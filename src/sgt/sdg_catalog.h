// The paper's static dependency graphs as program catalogs, for the SDG
// analyzer: SmallBank (Fig 2.9) with its §2.8.5 fixes (Fig 2.10), TPC-C
// (Fig 2.8), TPC-C++ with the Credit Check transaction (Fig 5.3), and
// sibench (§5.2). Item-class names follow the papers' column groups.

#ifndef SSIDB_SGT_SDG_CATALOG_H_
#define SSIDB_SGT_SDG_CATALOG_H_

#include <vector>

#include "src/sgt/sdg.h"

namespace ssidb::sgt {

/// Fig 2.9: Bal, DC, TS, Amg, WC over Account/Saving/Checking. The
/// analysis must find exactly one pivot: WriteCheck.
std::vector<Program> SmallBankPrograms();

/// §2.8.5 modifications, each of which must remove every dangerous
/// structure (Fig 2.10 shows PromoteBW's graph).
std::vector<Program> SmallBankMaterializeWT();
std::vector<Program> SmallBankPromoteWT();
std::vector<Program> SmallBankMaterializeBW();
std::vector<Program> SmallBankPromoteBW();

/// Fig 2.8: NEWO, PAY, DLVY1, DLVY2, OSTAT, SLEV. Dangerous-structure
/// free — the formal proof that TPC-C is serializable under SI.
std::vector<Program> TpccPrograms();

/// Fig 5.3: TPC-C plus Credit Check. Two pivots: NEWO and CCHECK.
std::vector<Program> TpccPlusPlusPrograms();

/// §5.2: a query and an update over one table; a single vulnerable edge,
/// no cycle.
std::vector<Program> SiBenchPrograms();

}  // namespace ssidb::sgt

#endif  // SSIDB_SGT_SDG_CATALOG_H_
