#include "src/sgt/history.h"

namespace ssidb::sgt {

void HistoryRecorder::Append(HistoryOp op) {
  std::lock_guard<std::mutex> guard(mu_);
  op.seq = next_seq_++;
  ops_.push_back(std::move(op));
}

void HistoryRecorder::Begin(TxnId txn, Timestamp snapshot_ts) {
  HistoryOp op;
  op.txn = txn;
  op.type = OpType::kBegin;
  op.version_cts = snapshot_ts;
  Append(std::move(op));
}

void HistoryRecorder::Read(TxnId txn, TableId table, Slice key,
                           Timestamp version_cts, bool own_write) {
  HistoryOp op;
  op.txn = txn;
  op.type = OpType::kRead;
  op.table = table;
  op.key = key.ToString();
  op.version_cts = version_cts;
  op.own_write = own_write;
  Append(std::move(op));
}

void HistoryRecorder::Write(TxnId txn, TableId table, Slice key,
                            bool tombstone) {
  HistoryOp op;
  op.txn = txn;
  op.type = OpType::kWrite;
  op.table = table;
  op.key = key.ToString();
  op.tombstone = tombstone;
  Append(std::move(op));
}

void HistoryRecorder::Scan(TxnId txn, TableId table, Slice lo, Slice hi,
                           Timestamp snapshot_ts) {
  HistoryOp op;
  op.txn = txn;
  op.type = OpType::kScan;
  op.table = table;
  op.key = lo.ToString();
  op.key2 = hi.ToString();
  op.version_cts = snapshot_ts;
  Append(std::move(op));
}

void HistoryRecorder::Commit(TxnId txn, Timestamp commit_ts) {
  HistoryOp op;
  op.txn = txn;
  op.type = OpType::kCommit;
  op.version_cts = commit_ts;
  Append(std::move(op));
}

void HistoryRecorder::Abort(TxnId txn) {
  HistoryOp op;
  op.txn = txn;
  op.type = OpType::kAbort;
  Append(std::move(op));
}

std::vector<HistoryOp> HistoryRecorder::Snapshot() const {
  std::lock_guard<std::mutex> guard(mu_);
  return ops_;
}

void HistoryRecorder::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  ops_.clear();
}

size_t HistoryRecorder::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return ops_.size();
}

}  // namespace ssidb::sgt
