// Execution history recording (the after-the-fact analysis tool the paper
// considered in §3.1.1, built here as a first-class test oracle).
//
// When DBOptions::record_history is set, the operation layer records every
// begin/read/write/scan/commit/abort with enough version information to
// reconstruct the multiversion serialization graph (MVSG, §2.5.1) offline.

#ifndef SSIDB_SGT_HISTORY_H_
#define SSIDB_SGT_HISTORY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/slice.h"
#include "src/storage/table.h"
#include "src/storage/version.h"

namespace ssidb::sgt {

enum class OpType : uint8_t {
  kBegin,
  kRead,     // point read; version_cts = commit ts of version observed
  kWrite,    // update/insert (tombstone=false) or delete (tombstone=true)
  kScan,     // predicate read over [lo, hi] at snapshot_ts
  kCommit,   // commit_ts recorded
  kAbort,
};

struct HistoryOp {
  uint64_t seq = 0;  // Global order of completion.
  TxnId txn = 0;
  OpType type = OpType::kBegin;
  TableId table = 0;
  std::string key;   // Read/write key; scan lower bound.
  std::string key2;  // Scan upper bound.
  /// kRead: commit ts of the version read (0 = own write or none visible).
  /// kScan: the snapshot the predicate evaluated against.
  /// kCommit: the transaction's commit timestamp.
  Timestamp version_cts = 0;
  bool own_write = false;
  bool tombstone = false;
};

/// Thread-safe append-only op log.
class HistoryRecorder {
 public:
  /// Recorded when the snapshot is assigned; `snapshot_ts` defines the
  /// transaction's begin time for concurrency (vulnerability) analysis.
  void Begin(TxnId txn, Timestamp snapshot_ts);
  void Read(TxnId txn, TableId table, Slice key, Timestamp version_cts,
            bool own_write);
  void Write(TxnId txn, TableId table, Slice key, bool tombstone);
  void Scan(TxnId txn, TableId table, Slice lo, Slice hi,
            Timestamp snapshot_ts);
  void Commit(TxnId txn, Timestamp commit_ts);
  void Abort(TxnId txn);

  std::vector<HistoryOp> Snapshot() const;
  void Clear();
  size_t size() const;

 private:
  void Append(HistoryOp op);

  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;
  std::vector<HistoryOp> ops_;
};

}  // namespace ssidb::sgt

#endif  // SSIDB_SGT_HISTORY_H_
