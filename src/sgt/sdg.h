// Static Dependency Graph analysis (paper §2.6, §2.8.4; Fekete et al.
// 2005): the *design-time* counterpart of the runtime SSI detector.
//
// A transaction program declares which item classes it reads and writes
// (item classes are table/column groups parameterized by the same key —
// e.g. "Saving" meaning Saving(c) for the program's customer c, exactly
// the granularity the paper's SmallBank and TPC-C analyses use). From a
// set of programs the SDG is built:
//
//   edge P1 -> P2      if P1 accesses an item class P2 writes (or reads,
//                      for wr direction), i.e. executions can produce a
//                      dependency T1 -> T2;
//   vulnerable edge    an rw edge that can occur between *concurrent*
//                      transactions: P1 reads x, P2 writes x, and no item
//                      class is written by both (a shared write would make
//                      first-committer-wins forbid the concurrency);
//   dangerous          Definition 1: vulnerable R -> P, vulnerable P -> Q,
//   structure          and Q == R or a path Q ->* R. P is the pivot.
//
// Theorem 3: an application whose SDG has no dangerous structure is
// serializable under plain SI. The catalogs in sdg_catalog.h encode the
// paper's graphs (Figs 2.8, 2.9, 2.10, 5.3) and the tests verify each
// analysis conclusion.

#ifndef SSIDB_SGT_SDG_H_
#define SSIDB_SGT_SDG_H_

#include <set>
#include <string>
#include <vector>

namespace ssidb::sgt {

/// A transaction program's declared access sets. Item-class names are
/// application-chosen strings; two programs conflict on a class when both
/// name it (same-parameter semantics, as in the paper's analyses).
struct Program {
  std::string name;
  std::set<std::string> reads;
  std::set<std::string> writes;

  bool read_only() const { return writes.empty(); }
};

enum class SdgEdgeType { kWW, kWR, kRW };

struct SdgEdge {
  std::string from;
  std::string to;
  SdgEdgeType type = SdgEdgeType::kRW;
  /// Set on rw edges that can occur between concurrent executions.
  bool vulnerable = false;
  /// One witnessing item class.
  std::string item;
};

/// A Definition 1 dangerous structure: R --rw--> P --rw--> Q with both
/// edges vulnerable and Q == R or Q ->* R.
struct SdgDangerousStructure {
  std::string in;     ///< R
  std::string pivot;  ///< P
  std::string out;    ///< Q
};

struct SdgAnalysis {
  std::vector<SdgEdge> edges;
  std::vector<SdgDangerousStructure> dangerous_structures;

  /// Theorem 3's conclusion: no dangerous structure => every execution of
  /// the programs under plain SI is serializable.
  bool serializable_under_si() const {
    return dangerous_structures.empty();
  }

  /// Distinct pivot program names, for the paper's "which program must be
  /// modified/promoted" discussions (§2.6, §2.8.5).
  std::vector<std::string> Pivots() const;
};

/// Build and analyze the SDG for a set of programs.
SdgAnalysis AnalyzeSdg(const std::vector<Program>& programs);

/// Pretty-print an analysis (programs, edges with vulnerability marks,
/// dangerous structures) in the style of the paper's figures.
std::string DescribeSdg(const std::vector<Program>& programs,
                        const SdgAnalysis& analysis);

}  // namespace ssidb::sgt

#endif  // SSIDB_SGT_SDG_H_
