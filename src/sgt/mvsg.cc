#include "src/sgt/mvsg.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ssidb::sgt {

namespace {

struct TxnInfo {
  Timestamp snapshot_ts = 0;
  Timestamp commit_ts = 0;
  bool committed = false;
};

using Item = std::pair<TableId, std::string>;

struct ItemHash {
  size_t operator()(const Item& item) const {
    size_t h = std::hash<std::string>()(item.second);
    return h * 31 + item.first;
  }
};

struct VersionWrite {
  Timestamp cts;
  TxnId txn;
  bool operator<(const VersionWrite& o) const { return cts < o.cts; }
};

bool Concurrent(const TxnInfo& a, const TxnInfo& b) {
  // Lifetimes [snapshot, commit) intersect.
  return a.snapshot_ts < b.commit_ts && b.snapshot_ts < a.commit_ts;
}

}  // namespace

MVSGResult AnalyzeHistory(const std::vector<HistoryOp>& ops) {
  MVSGResult result;

  std::unordered_map<TxnId, TxnInfo> txns;
  for (const HistoryOp& op : ops) {
    switch (op.type) {
      case OpType::kBegin:
        txns[op.txn].snapshot_ts = op.version_cts;
        break;
      case OpType::kCommit:
        txns[op.txn].commit_ts = op.version_cts;
        txns[op.txn].committed = true;
        break;
      default:
        break;
    }
  }

  auto committed = [&](TxnId t) {
    auto it = txns.find(t);
    return it != txns.end() && it->second.committed;
  };

  // Writes per item, in version (= commit timestamp) order.
  std::unordered_map<Item, std::vector<VersionWrite>, ItemHash> writes;
  for (const HistoryOp& op : ops) {
    if (op.type != OpType::kWrite || !committed(op.txn)) continue;
    writes[{op.table, op.key}].push_back(
        VersionWrite{txns[op.txn].commit_ts, op.txn});
  }
  for (auto& [item, list] : writes) {
    std::sort(list.begin(), list.end());
    // One logical version per (txn, item): a transaction overwriting its
    // own write installs a single version.
    list.erase(std::unique(list.begin(), list.end(),
                           [](const VersionWrite& a, const VersionWrite& b) {
                             return a.txn == b.txn;
                           }),
               list.end());
  }

  std::set<std::tuple<TxnId, TxnId, EdgeType>> seen;
  auto add_edge = [&](TxnId from, TxnId to, EdgeType type) {
    if (from == to) return;
    if (!seen.insert({from, to, type}).second) return;
    Edge e;
    e.from = from;
    e.to = to;
    e.type = type;
    e.vulnerable =
        type == EdgeType::kRW && Concurrent(txns[from], txns[to]);
    result.edges.push_back(e);
  };

  // ww edges: adjacent pairs in version order (transitively sufficient).
  for (const auto& [item, list] : writes) {
    (void)item;
    for (size_t i = 1; i < list.size(); ++i) {
      add_edge(list[i - 1].txn, list[i].txn, EdgeType::kWW);
    }
  }

  // wr and rw edges from point reads.
  for (const HistoryOp& op : ops) {
    if (op.type != OpType::kRead || op.own_write || !committed(op.txn)) {
      continue;
    }
    auto it = writes.find({op.table, op.key});
    if (it == writes.end()) continue;
    const std::vector<VersionWrite>& list = it->second;
    if (op.version_cts != 0) {
      // wr: creator -> reader.
      auto w = std::lower_bound(list.begin(), list.end(),
                                VersionWrite{op.version_cts, 0});
      if (w != list.end() && w->cts == op.version_cts) {
        add_edge(w->txn, op.txn, EdgeType::kWR);
      }
    }
    // rw: reader -> first writer of a newer version.
    auto w = std::upper_bound(list.begin(), list.end(),
                              VersionWrite{op.version_cts, UINT64_MAX});
    if (w != list.end()) {
      add_edge(op.txn, w->txn, EdgeType::kRW);
    }
  }

  // Predicate rw edges from scans: T1 scanned [lo, hi] at snapshot s; any
  // committed write into the range with cts > s that T1 did not observe is
  // a phantom antidependency.
  for (const HistoryOp& op : ops) {
    if (op.type != OpType::kScan || !committed(op.txn)) continue;
    for (const auto& [item, list] : writes) {
      if (item.first != op.table) continue;
      if (item.second < op.key || item.second > op.key2) continue;
      auto w = std::upper_bound(list.begin(), list.end(),
                                VersionWrite{op.version_cts, UINT64_MAX});
      while (w != list.end() && w->txn == op.txn) ++w;
      if (w != list.end()) {
        add_edge(op.txn, w->txn, EdgeType::kRW);
      }
    }
  }

  // Count committed nodes.
  for (const auto& [id, info] : txns) {
    (void)id;
    if (info.committed) ++result.committed_txns;
  }

  // Cycle detection: iterative DFS, white/grey/black.
  std::unordered_map<TxnId, std::vector<TxnId>> adj;
  for (const Edge& e : result.edges) adj[e.from].push_back(e.to);

  enum Color : uint8_t { kWhite, kGrey, kBlack };
  std::unordered_map<TxnId, Color> color;
  std::unordered_map<TxnId, TxnId> parent;

  for (const auto& [start, _] : adj) {
    (void)_;
    if (color[start] != kWhite) continue;
    std::vector<std::pair<TxnId, size_t>> stack{{start, 0}};
    color[start] = kGrey;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const std::vector<TxnId>& next = adj[node];
      if (idx >= next.size()) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId child = next[idx++];
      if (color[child] == kGrey) {
        // Found a cycle: unwind node -> ... -> child.
        result.serializable = false;
        // Each node appears once; printers close the loop back to front().
        std::vector<TxnId> cycle;
        for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
          cycle.push_back(rit->first);
          if (rit->first == child) break;
        }
        std::reverse(cycle.begin(), cycle.end());
        result.cycle = std::move(cycle);
        break;
      }
      if (color[child] == kWhite) {
        color[child] = kGrey;
        parent[child] = node;
        stack.push_back({child, 0});
      }
    }
    if (!result.serializable) break;
  }

  // Dangerous structures: pivot with consecutive vulnerable edges.
  constexpr size_t kMaxStructures = 64;
  std::unordered_map<TxnId, std::vector<TxnId>> vuln_in, vuln_out;
  for (const Edge& e : result.edges) {
    if (e.type == EdgeType::kRW && e.vulnerable) {
      vuln_out[e.from].push_back(e.to);
      vuln_in[e.to].push_back(e.from);
    }
  }
  for (const auto& [pivot, ins] : vuln_in) {
    auto out_it = vuln_out.find(pivot);
    if (out_it == vuln_out.end()) continue;
    for (TxnId in : ins) {
      for (TxnId out : out_it->second) {
        if (result.dangerous_structures.size() >= kMaxStructures) break;
        result.dangerous_structures.push_back(
            DangerousStructure{in, pivot, out});
      }
    }
  }

  return result;
}

std::string DescribeResult(const MVSGResult& result) {
  std::ostringstream os;
  os << "MVSG: " << result.committed_txns << " committed transactions, "
     << result.edges.size() << " edges, "
     << result.dangerous_structures.size() << " dangerous structure(s)\n";
  os << (result.serializable ? "history is serializable (acyclic MVSG)\n"
                             : "history is NOT serializable; cycle: ");
  if (!result.serializable) {
    for (size_t i = 0; i < result.cycle.size(); ++i) {
      if (i > 0) os << " -> ";
      os << "T" << result.cycle[i];
    }
    os << " -> T" << result.cycle.front() << "\n";
  }
  for (const DangerousStructure& d : result.dangerous_structures) {
    os << "  dangerous: T" << d.in << " --rw--> T" << d.pivot << " --rw--> T"
       << d.out << "\n";
  }
  return os.str();
}

}  // namespace ssidb::sgt
