#include "src/sgt/sdg_catalog.h"

#include <functional>

namespace ssidb::sgt {

std::vector<Program> SmallBankPrograms() {
  // All programs start by reading Account (name -> id). Balance columns
  // are the Saving/Checking item classes, parameterized by the customer.
  return {
      Program{"Bal", {"Account", "Saving", "Checking"}, {}},
      Program{"DC", {"Account", "Checking"}, {"Checking"}},
      Program{"TS", {"Account", "Saving"}, {"Saving"}},
      Program{"Amg",
              {"Account", "Saving", "Checking"},
              {"Saving", "Checking"}},
      Program{"WC", {"Account", "Saving", "Checking"}, {"Checking"}},
  };
}

namespace {

std::vector<Program> WithFix(
    const std::function<void(std::vector<Program>*)>& apply) {
  std::vector<Program> programs = SmallBankPrograms();
  apply(&programs);
  return programs;
}

Program* Find(std::vector<Program>* programs, const std::string& name) {
  for (Program& p : *programs) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace

std::vector<Program> SmallBankMaterializeWT() {
  // §2.8.5: WC and TS both update the customer's Conflict row.
  return WithFix([](std::vector<Program>* p) {
    Find(p, "WC")->reads.insert("Conflict");
    Find(p, "WC")->writes.insert("Conflict");
    Find(p, "TS")->reads.insert("Conflict");
    Find(p, "TS")->writes.insert("Conflict");
  });
}

std::vector<Program> SmallBankPromoteWT() {
  // WC's Saving read becomes an identity write (or SELECT FOR UPDATE).
  return WithFix(
      [](std::vector<Program>* p) { Find(p, "WC")->writes.insert("Saving"); });
}

std::vector<Program> SmallBankMaterializeBW() {
  return WithFix([](std::vector<Program>* p) {
    Find(p, "Bal")->reads.insert("Conflict");
    Find(p, "Bal")->writes.insert("Conflict");
    Find(p, "WC")->reads.insert("Conflict");
    Find(p, "WC")->writes.insert("Conflict");
  });
}

std::vector<Program> SmallBankPromoteBW() {
  // Fig 2.10: Bal updates the Checking row it read — the query becomes an
  // update (the costly option the vendor docs recommend).
  return WithFix([](std::vector<Program>* p) {
    Find(p, "Bal")->writes.insert("Checking");
  });
}

std::vector<Program> TpccPrograms() {
  // Item classes per the Fekete et al. 2005 column-group analysis:
  // D.NEXT (district next order id), S.QTY (stock levels), W.YTD/D.YTD,
  // C.BAL, O.* / NO.* / OL.* rows, I.* (read-only catalog).
  return {
      Program{"NEWO",
              {"D.NEXT", "S.QTY", "C.INFO", "I.INFO"},
              {"D.NEXT", "S.QTY", "O", "NO", "OL"}},
      Program{"PAY",
              {"W.YTD", "D.YTD", "C.BAL"},
              {"W.YTD", "D.YTD", "C.BAL"}},
      // The paper splits Delivery: DLVY1 found no undelivered order (a
      // pure predicate read of NO), DLVY2 delivers one.
      Program{"DLVY1", {"NO"}, {}},
      Program{"DLVY2",
              {"NO", "O", "OL", "C.BAL"},
              {"NO", "O", "OL", "C.BAL"}},
      Program{"OSTAT", {"C.BAL", "O", "OL"}, {}},
      Program{"SLEV", {"D.NEXT", "OL", "S.QTY"}, {}},
  };
}

std::vector<Program> TpccPlusPlusPrograms() {
  std::vector<Program> programs = TpccPrograms();
  // §5.3.2: Credit Check reads the unpaid balance (C.BAL + undelivered
  // orders) and writes the partitioned C.CREDIT; New Order reads C.CREDIT
  // (it is shown on the terminal).
  for (Program& p : programs) {
    if (p.name == "NEWO") p.reads.insert("C.CREDIT");
  }
  programs.push_back(Program{"CCHECK",
                             {"C.BAL", "C.LIM", "NO", "O", "OL"},
                             {"C.CREDIT"}});
  return programs;
}

std::vector<Program> SiBenchPrograms() {
  return {
      Program{"Query", {"sitest"}, {}},
      Program{"Update", {"sitest"}, {"sitest"}},
  };
}

}  // namespace ssidb::sgt
