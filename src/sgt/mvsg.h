// Multiversion serialization graph construction and cycle analysis
// (§2.5.1, Figs 2.1/2.2). Used as the repository's serializability oracle:
// a committed history is serializable if its MVSG is acyclic.
//
// Edge rules over committed transactions (SI version order = commit order):
//   ww: T1 and T2 write the same item, commit(T1) < commit(T2)   T1 -> T2
//   wr: T2 reads the version T1 created                           T1 -> T2
//   rw: T1 reads a version older than one T2 creates              T1 -> T2
//       (the antidependency; the only edge between concurrent txns)
// Predicate rw edges: a scan by T1 at snapshot s, and any write by T2 into
// the scanned range with commit(T2) > s, gives T1 -> T2 (phantoms, §2.5.2).

#ifndef SSIDB_SGT_MVSG_H_
#define SSIDB_SGT_MVSG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/sgt/history.h"

namespace ssidb::sgt {

enum class EdgeType : uint8_t { kWW, kWR, kRW };

struct Edge {
  TxnId from = 0;
  TxnId to = 0;
  EdgeType type = EdgeType::kWW;
  /// True for rw edges between transactions whose lifetimes overlap — the
  /// "vulnerable" edges of the dangerous-structure theory (§2.5.1).
  bool vulnerable = false;
};

/// A pivot with consecutive vulnerable in/out edges (Fig 2.2). The paper's
/// detector keys on exactly this pattern.
struct DangerousStructure {
  TxnId in = 0;
  TxnId pivot = 0;
  TxnId out = 0;
};

struct MVSGResult {
  bool serializable = true;
  /// One witness cycle (transaction ids in order) when not serializable.
  std::vector<TxnId> cycle;
  std::vector<Edge> edges;
  std::vector<DangerousStructure> dangerous_structures;
  size_t committed_txns = 0;
};

/// Build the MVSG for the committed transactions of `ops` and test for
/// cycles. Aborted/unfinished transactions are excluded (they never appear
/// in the graph, §2.2).
MVSGResult AnalyzeHistory(const std::vector<HistoryOp>& ops);

/// Pretty-print an analysis (for the history_analyzer example).
std::string DescribeResult(const MVSGResult& result);

}  // namespace ssidb::sgt

#endif  // SSIDB_SGT_MVSG_H_
