#include "src/io/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>

namespace ssidb::io {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Env (the POSIX passthrough — also the base the injector delegates to).
// ---------------------------------------------------------------------------

Env* Env::Default() {
  static Env env;
  return &env;
}

int Env::Open(const char* path, int flags, int mode) {
  return ::open(path, flags, mode);
}

int Env::Close(int fd) { return ::close(fd); }

ssize_t Env::Read(int fd, void* buf, size_t count) {
  return ::read(fd, buf, count);
}

ssize_t Env::Write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}

ssize_t Env::Pread(int fd, void* buf, size_t count, off_t offset) {
  return ::pread(fd, buf, count, offset);
}

ssize_t Env::Pwrite(int fd, const void* buf, size_t count, off_t offset) {
  return ::pwrite(fd, buf, count, offset);
}

int Env::Fsync(int fd) { return ::fsync(fd); }

Status Env::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) return Status::IOError("rename " + from + ": " + ec.message());
  return Status::OK();
}

Status Env::RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status Env::CreateDirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir " + dir + ": " + ec.message());
  return Status::OK();
}

Status Env::ResizeFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) return Status::IOError("resize " + path + ": " + ec.message());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------------

void FaultInjectingEnv::InjectFault(FaultKind kind,
                                    const std::string& path_substr,
                                    uint64_t skip, uint64_t count) {
  std::lock_guard<std::mutex> guard(mu_);
  faults_.push_back(Fault{kind, path_substr, skip, count});
}

void FaultInjectingEnv::InjectRandom(uint64_t seed, uint32_t denominator,
                                     const std::string& path_substr) {
  std::lock_guard<std::mutex> guard(mu_);
  rng_.seed(seed);
  random_denominator_ = denominator;
  random_substr_ = path_substr;
}

void FaultInjectingEnv::FailWritesAfter(uint64_t write_ops) {
  std::lock_guard<std::mutex> guard(mu_);
  fail_all_armed_ = true;
  writes_until_fail_all_ = write_ops;
}

void FaultInjectingEnv::ClearFaults() {
  std::lock_guard<std::mutex> guard(mu_);
  faults_.clear();
  random_denominator_ = 0;
  random_substr_.clear();
  fail_all_armed_ = false;
  writes_until_fail_all_ = 0;
}

bool FaultInjectingEnv::Applies(FaultKind kind, OpClass op) {
  switch (op) {
    case OpClass::kRead:
      return kind == FaultKind::kReadError;
    case OpClass::kWrite:
      return kind == FaultKind::kWriteError ||
             kind == FaultKind::kShortWrite ||
             kind == FaultKind::kTornWrite || kind == FaultKind::kNoSpace;
    case OpClass::kFsync:
      return kind == FaultKind::kFsyncError;
    case OpClass::kCreate:
      return kind == FaultKind::kNoSpace;
  }
  return false;
}

bool FaultInjectingEnv::NextFault(OpClass op, const std::string& path,
                                  FaultKind* kind) {
  std::lock_guard<std::mutex> guard(mu_);
  // Device-loss mode: write-class ops (and fsync, which cannot be trusted
  // once the device vanished) all fail once the countdown expires.
  if (fail_all_armed_) {
    const bool write_class = op == OpClass::kWrite || op == OpClass::kCreate;
    if (write_class || op == OpClass::kFsync) {
      if (writes_until_fail_all_ == 0) {
        *kind = FaultKind::kWriteError;
        injected_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (write_class) --writes_until_fail_all_;
    }
  }
  // Scripted schedule: the first matching, non-exhausted entry decides.
  for (Fault& f : faults_) {
    if (f.count == 0) continue;
    if (!Applies(f.kind, op)) continue;
    if (!f.path_substr.empty() &&
        path.find(f.path_substr) == std::string::npos) {
      continue;
    }
    if (f.skip > 0) {
      --f.skip;
      return false;
    }
    --f.count;
    *kind = f.kind;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Seeded random schedule.
  if (random_denominator_ > 0 && op != OpClass::kCreate &&
      (random_substr_.empty() ||
       path.find(random_substr_) != std::string::npos)) {
    if (rng_() % random_denominator_ == 0) {
      if (op == OpClass::kRead) {
        *kind = FaultKind::kReadError;
      } else if (op == OpClass::kFsync) {
        *kind = FaultKind::kFsyncError;
      } else {
        *kind = rng_() % 4 == 0 ? FaultKind::kNoSpace
                                : FaultKind::kWriteError;
      }
      injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::string FaultInjectingEnv::PathOf(int fd) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = fd_paths_.find(fd);
  return it != fd_paths_.end() ? it->second : std::string();
}

int FaultInjectingEnv::Open(const char* path, int flags, int mode) {
  FaultKind kind;
  if ((flags & O_CREAT) != 0 && NextFault(OpClass::kCreate, path, &kind)) {
    errno = ENOSPC;
    return -1;
  }
  const int fd = base_->Open(path, flags, mode);
  if (fd >= 0) {
    std::lock_guard<std::mutex> guard(mu_);
    fd_paths_[fd] = path;
  }
  return fd;
}

int FaultInjectingEnv::Close(int fd) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    fd_paths_.erase(fd);
  }
  return base_->Close(fd);
}

ssize_t FaultInjectingEnv::Read(int fd, void* buf, size_t count) {
  FaultKind kind;
  if (NextFault(OpClass::kRead, PathOf(fd), &kind)) {
    errno = EIO;
    return -1;
  }
  return base_->Read(fd, buf, count);
}

ssize_t FaultInjectingEnv::Write(int fd, const void* buf, size_t count) {
  FaultKind kind;
  if (NextFault(OpClass::kWrite, PathOf(fd), &kind)) {
    switch (kind) {
      case FaultKind::kNoSpace:
        errno = ENOSPC;
        return -1;
      case FaultKind::kShortWrite:
        return count > 1 ? base_->Write(fd, buf, count / 2)
                         : base_->Write(fd, buf, count);
      case FaultKind::kTornWrite:
        if (count > 1) base_->Write(fd, buf, count / 2);
        errno = EIO;
        return -1;
      default:
        errno = EIO;
        return -1;
    }
  }
  return base_->Write(fd, buf, count);
}

ssize_t FaultInjectingEnv::Pread(int fd, void* buf, size_t count,
                                 off_t offset) {
  FaultKind kind;
  if (NextFault(OpClass::kRead, PathOf(fd), &kind)) {
    errno = EIO;
    return -1;
  }
  return base_->Pread(fd, buf, count, offset);
}

ssize_t FaultInjectingEnv::Pwrite(int fd, const void* buf, size_t count,
                                  off_t offset) {
  FaultKind kind;
  if (NextFault(OpClass::kWrite, PathOf(fd), &kind)) {
    switch (kind) {
      case FaultKind::kNoSpace:
        errno = ENOSPC;
        return -1;
      case FaultKind::kShortWrite:
        return count > 1 ? base_->Pwrite(fd, buf, count / 2, offset)
                         : base_->Pwrite(fd, buf, count, offset);
      case FaultKind::kTornWrite:
        if (count > 1) base_->Pwrite(fd, buf, count / 2, offset);
        errno = EIO;
        return -1;
      default:
        errno = EIO;
        return -1;
    }
  }
  return base_->Pwrite(fd, buf, count, offset);
}

int FaultInjectingEnv::Fsync(int fd) {
  FaultKind kind;
  if (NextFault(OpClass::kFsync, PathOf(fd), &kind)) {
    errno = EIO;
    return -1;
  }
  return base_->Fsync(fd);
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  FaultKind kind;
  if (NextFault(OpClass::kWrite, to, &kind)) {
    return Status::IOError("rename " + from + ": injected " +
                           (kind == FaultKind::kNoSpace
                                ? std::string("ENOSPC")
                                : std::string("EIO")));
  }
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);  // Deletes always succeed: faults must
                                   // never block cleanup paths.
}

Status FaultInjectingEnv::CreateDirs(const std::string& dir) {
  FaultKind kind;
  if (NextFault(OpClass::kCreate, dir, &kind)) {
    return Status::IOError("mkdir " + dir + ": injected ENOSPC");
  }
  return base_->CreateDirs(dir);
}

Status FaultInjectingEnv::ResizeFile(const std::string& path, uint64_t size) {
  FaultKind kind;
  if (NextFault(OpClass::kWrite, path, &kind)) {
    return Status::IOError("resize " + path + ": injected EIO");
  }
  return base_->ResizeFile(path, size);
}

}  // namespace ssidb::io
