// Env: the pluggable I/O seam under every durable artifact — WAL segments,
// checkpoint images, run files and buffer-pool page I/O all route their
// filesystem calls through an Env so tests can make the disk lie.
//
// Two implementations:
//   * Env::Default() — thin passthrough to the POSIX calls the engine used
//     to issue directly. The fd-level methods keep POSIX signatures
//     (return -1 and set errno on failure) so the existing ErrnoStatus
//     error strings are produced unchanged; directory/whole-file
//     manipulation is expressed at the Status level.
//   * FaultInjectingEnv — wraps another Env and injects a scripted or
//     seeded schedule of failures: EIO, ENOSPC, short writes, torn writes
//     (a partial write followed by EIO — the bytes that did land simulate
//     the tear), fsync failures, and a "device lost" mode where every
//     write-class op fails after the N-th (crash-after-N-ops harnesses
//     combine it with a process-level reopen).
//
// Threading: Env::Default() is stateless and safe from any thread.
// FaultInjectingEnv guards its schedule with a mutex; injection decisions
// are serialized, the delegated I/O is not.
//
// Ownership: the engine never owns an Env. DBOptions::env (and the
// defaulted Env* parameters on the lower layers) borrow it; callers keep
// the Env alive for the life of the DB. A null Env* anywhere means
// Env::Default().

#ifndef SSIDB_IO_ENV_H_
#define SSIDB_IO_ENV_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace ssidb::io {

class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX passthrough. Never null; stateless.
  static Env* Default();

  // ---- fd-level ops: POSIX semantics, -1 + errno on failure. ----
  virtual int Open(const char* path, int flags, int mode);
  virtual int Close(int fd);
  virtual ssize_t Read(int fd, void* buf, size_t count);
  virtual ssize_t Write(int fd, const void* buf, size_t count);
  virtual ssize_t Pread(int fd, void* buf, size_t count, off_t offset);
  virtual ssize_t Pwrite(int fd, const void* buf, size_t count, off_t offset);
  virtual int Fsync(int fd);

  // ---- path-level ops: Status-carrying (no errno contract). ----
  virtual Status Rename(const std::string& from, const std::string& to);
  virtual Status RemoveFile(const std::string& path);
  virtual Status CreateDirs(const std::string& dir);
  virtual Status ResizeFile(const std::string& path, uint64_t size);

  /// Faults injected so far (io.injected_faults). 0 for the default env.
  virtual uint64_t injected_faults() const { return 0; }
};

/// nullptr -> Env::Default(): the plumbing convention of every defaulted
/// Env* parameter below this layer.
inline Env* ResolveEnv(Env* env) { return env != nullptr ? env : Env::Default(); }

/// An Env that fails on schedule. Build a schedule with InjectFault /
/// InjectRandom / FailWritesAfter, hand the env to DBOptions::env (or any
/// lower-level Env* parameter), then ClearFaults() to "fix the disk".
class FaultInjectingEnv : public Env {
 public:
  enum class FaultKind : uint8_t {
    kReadError,   ///< Pread fails with EIO.
    kWriteError,  ///< Write/Pwrite fails with EIO (no bytes written).
    kShortWrite,  ///< Write/Pwrite writes ~half the bytes and returns the
                  ///< short count (success — exercises caller write loops).
    kTornWrite,   ///< Write/Pwrite writes ~half the bytes, then fails with
                  ///< EIO: a torn frame is now on disk.
    kFsyncError,  ///< Fsync fails with EIO.
    kNoSpace,     ///< Write/Pwrite (and O_CREAT opens) fail with ENOSPC.
  };

  explicit FaultInjectingEnv(Env* base = nullptr)
      : base_(ResolveEnv(base)) {}

  /// Scripted fault: let `skip` ops that match (kind class + path
  /// substring) through, then fail the next `count` of them. An empty
  /// `path_substr` matches every path. Faults stack; the first non-
  /// exhausted matching entry decides each op.
  void InjectFault(FaultKind kind, const std::string& path_substr,
                   uint64_t skip = 0, uint64_t count = UINT64_MAX);

  /// Seeded random schedule: each matching write-class/fsync/read op fails
  /// (EIO; ENOSPC for one in four write failures) with probability
  /// 1/denominator. Deterministic for a fixed seed and op sequence.
  void InjectRandom(uint64_t seed, uint32_t denominator,
                    const std::string& path_substr = "");

  /// Device-loss mode: after `write_ops` more write-class ops (Write,
  /// Pwrite, creating Open), every subsequent write-class op and fsync
  /// fails with EIO until ClearFaults.
  void FailWritesAfter(uint64_t write_ops);

  /// Fix the disk: drop every scheduled, random and device-loss fault.
  void ClearFaults();

  uint64_t injected_faults() const override {
    return injected_.load(std::memory_order_relaxed);
  }

  int Open(const char* path, int flags, int mode) override;
  int Close(int fd) override;
  ssize_t Read(int fd, void* buf, size_t count) override;
  ssize_t Write(int fd, const void* buf, size_t count) override;
  ssize_t Pread(int fd, void* buf, size_t count, off_t offset) override;
  ssize_t Pwrite(int fd, const void* buf, size_t count, off_t offset) override;
  int Fsync(int fd) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;
  Status ResizeFile(const std::string& path, uint64_t size) override;

 private:
  /// Op classes a fault kind applies to.
  enum class OpClass : uint8_t { kRead, kWrite, kFsync, kCreate };

  struct Fault {
    FaultKind kind;
    std::string path_substr;
    uint64_t skip = 0;
    uint64_t count = 0;
  };

  static bool Applies(FaultKind kind, OpClass op);

  /// Consult the schedule for one op. Returns the fault to inject (via
  /// *kind) or false to pass through. Decrements skip/count state.
  bool NextFault(OpClass op, const std::string& path, FaultKind* kind);

  std::string PathOf(int fd);

  Env* const base_;
  mutable std::mutex mu_;
  std::vector<Fault> faults_;
  /// fd -> path, for path-substring filters on fd-level ops.
  std::unordered_map<int, std::string> fd_paths_;
  /// Random schedule (denominator 0 = off).
  std::mt19937_64 rng_;
  uint32_t random_denominator_ = 0;
  std::string random_substr_;
  /// Device-loss mode: write-class ops remaining before everything fails
  /// (negative-infinity semantics via the armed flag).
  bool fail_all_armed_ = false;
  uint64_t writes_until_fail_all_ = 0;
  std::atomic<uint64_t> injected_{0};
};

}  // namespace ssidb::io

#endif  // SSIDB_IO_ENV_H_
