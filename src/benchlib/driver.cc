#include "src/benchlib/driver.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <cstdlib>
#include <ctime>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace ssidb::bench {

std::vector<SeriesConfig> StandardSeries() {
  return {
      SeriesConfig{"S2PL", IsolationLevel::kSerializable2PL, std::nullopt},
      SeriesConfig{"SI", IsolationLevel::kSnapshot, std::nullopt},
      SeriesConfig{"SSI", IsolationLevel::kSerializableSSI, std::nullopt},
  };
}

RunResult RunWorkload(DB* db, Workload* workload, const SeriesConfig& series,
                      const DriverConfig& config) {
  // Phases: 0 = warmup, 1 = measure, 2 = stop. Workers only count during
  // the measurement window.
  std::atomic<int> phase{0};
  std::vector<RunResult> per_worker(config.mpl);
  std::vector<std::thread> workers;
  workers.reserve(config.mpl);

  for (int w = 0; w < config.mpl; ++w) {
    workers.emplace_back([&, w] {
      Random rng(config.seed * 7919 + w * 104729 + 1);
      RunResult& local = per_worker[w];
      if (config.pipeline_depth <= 0) {
        for (;;) {
          const int p = phase.load(std::memory_order_acquire);
          if (p == 2) break;
          const Status st = workload->RunOne(db, series, w, &rng);
          if (p == 1) local.Count(st);
        }
        return;
      }
      // Pipelined worker: submit through SubmitOne until `depth`
      // transactions are unacknowledged, then wait for acks to open the
      // window again. The acknowledgment may fire on any thread (group-
      // commit flusher, another committer's watermark advance, or this
      // thread inline) and concurrently with other acks of this worker,
      // so counting happens under the worker's sync mutex — and the
      // notify stays under it too, or the callback could race the
      // worker's teardown of the condition variable. The 1ms re-drive in
      // both waits is the liveness backstop for a completion whose
      // covering watermark advance went stale (commit_ring.h).
      const int depth = config.pipeline_depth;
      auto session = db->CreateSession();
      struct Sync {
        std::mutex mu;
        std::condition_variable cv;
        int inflight = 0;
      } sync;
      const auto wait_with_redrive = [&](auto pred) {
        std::unique_lock<std::mutex> guard(sync.mu);
        while (!sync.cv.wait_for(guard, std::chrono::milliseconds(1), pred)) {
          guard.unlock();
          db->txn_manager()->DriveCommitPipeline();
          guard.lock();
        }
      };
      for (;;) {
        const int p = phase.load(std::memory_order_acquire);
        if (p == 2) break;
        wait_with_redrive([&] { return sync.inflight < depth; });
        {
          std::lock_guard<std::mutex> guard(sync.mu);
          ++sync.inflight;
        }
        workload->SubmitOne(db, session.get(), series, w, &rng,
                            [&sync, &local, p](Status st) {
                              std::lock_guard<std::mutex> guard(sync.mu);
                              if (p == 1) local.Count(st);
                              --sync.inflight;
                              sync.cv.notify_one();
                            });
      }
      // Drain: every submitted transaction must acknowledge before the
      // session (and this stack frame the callbacks point into) dies.
      wait_with_redrive([&] { return sync.inflight == 0; });
    });
  }

  const auto sleep_for = [](double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  };
  sleep_for(config.warmup_seconds);
  // Snapshot the group-commit counters at the window start: the mean
  // batch size must be derived over the measurement window alone, or the
  // setup/load and warmup phases would dominate the ratio.
  const DBStats at_start = db->GetStats();
  // Commit-latency percentiles are windowed the same way: snapshot the
  // commit.total_ns stage histogram here, subtract it from the end-of-run
  // snapshot, and read the quantiles off the delta.
  const obs::Histogram* commit_hist =
      db->metrics()->FindHistogram("commit.total_ns");
  obs::HistogramSnapshot commit_at_start;
  if (commit_hist != nullptr) commit_at_start = commit_hist->Snapshot();
  const auto start = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_release);
  sleep_for(config.measure_seconds);
  phase.store(2, std::memory_order_release);
  const auto end = std::chrono::steady_clock::now();
  for (std::thread& t : workers) t.join();

  RunResult total;
  total.seconds = std::chrono::duration<double>(end - start).count();
  for (const RunResult& r : per_worker) {
    total.commits += r.commits;
    total.deadlocks += r.deadlocks;
    total.update_conflicts += r.update_conflicts;
    total.unsafe += r.unsafe;
    total.timeouts += r.timeouts;
    total.app_rollbacks += r.app_rollbacks;
  }
  // Durable-regime overhead record: what the engine's durability + GC
  // machinery did while the workload ran.
  const DBStats engine = db->GetStats();
  total.checkpoints_taken = engine.checkpoints_taken;
  total.checkpoint_bytes_written = engine.checkpoint_bytes_written;
  total.wal_segments_deleted = engine.wal_segments_deleted;
  total.versions_pruned = engine.versions_pruned;
  const uint64_t window_batches =
      engine.log_flush_batches - at_start.log_flush_batches;
  const uint64_t window_records = engine.log_records - at_start.log_records;
  total.log_flush_batches = window_batches;
  total.log_mean_batch =
      window_batches == 0
          ? 0.0
          : static_cast<double>(window_records) /
                static_cast<double>(window_batches);
  // Disk-tier record (zero when the buffer pool is disabled).
  total.buffer_pool_hits = engine.buffer_pool_hits;
  total.buffer_pool_misses = engine.buffer_pool_misses;
  total.buffer_pool_evictions = engine.buffer_pool_evictions;
  total.buffer_pool_writebacks = engine.buffer_pool_writebacks;
  total.spilled_chains = engine.spilled_chains;
  total.faulted_chains = engine.faulted_chains;
  if (commit_hist != nullptr) {
    const obs::HistogramSnapshot window =
        commit_hist->Snapshot().Delta(commit_at_start);
    if (window.count > 0) {
      total.commit_p50_us = window.Quantile(0.50) / 1000.0;
      total.commit_p95_us = window.Quantile(0.95) / 1000.0;
      total.commit_p99_us = window.Quantile(0.99) / 1000.0;
      total.commit_max_us = static_cast<double>(window.max) / 1000.0;
    }
  }
  return total;
}

double EnvSeconds(double dflt) {
  const char* v = std::getenv("SSIDB_BENCH_SECONDS");
  if (v == nullptr) return dflt;
  const double s = std::atof(v);
  return s > 0 ? s : dflt;
}

std::vector<int> EnvMpls(const std::vector<int>& dflt) {
  const char* v = std::getenv("SSIDB_BENCH_MPLS");
  if (v == nullptr) return dflt;
  std::vector<int> out;
  std::stringstream ss(v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int m = std::atoi(tok.c_str());
    if (m > 0) out.push_back(m);
  }
  return out.empty() ? dflt : out;
}

uint32_t EnvFlushUs(uint32_t dflt) {
  const char* v = std::getenv("SSIDB_FLUSH_US");
  if (v == nullptr) return dflt;
  const long us = std::atol(v);
  return us >= 0 ? static_cast<uint32_t>(us) : dflt;
}

uint32_t EnvCheckpointIntervalMs(uint32_t dflt) {
  const char* v = std::getenv("SSIDB_CKPT_INTERVAL_MS");
  if (v == nullptr) return dflt;
  const long ms = std::atol(v);
  return ms >= 0 ? static_cast<uint32_t>(ms) : dflt;
}

uint32_t EnvGroupCommitWaitUs(uint32_t dflt) {
  const char* v = std::getenv("SSIDB_GC_WAIT_US");
  if (v == nullptr) return dflt;
  const long us = std::atol(v);
  return us >= 0 ? static_cast<uint32_t>(us) : dflt;
}

std::string EnvWalDir() {
  const char* v = std::getenv("SSIDB_WAL_DIR");
  return v == nullptr ? std::string() : std::string(v);
}

std::string EnvMetricsDump() {
  const char* v = std::getenv("SSIDB_METRICS_DUMP");
  return v == nullptr ? std::string() : std::string(v);
}

int EnvPipelineDepth(int dflt) {
  const char* v = std::getenv("SSIDB_PIPELINE");
  if (v == nullptr) return dflt;
  const long d = std::atol(v);
  return d >= 0 ? static_cast<int>(d) : dflt;
}

void MaybeDumpMetrics(DB* db, const std::string& path) {
  if (path.empty() || db == nullptr) return;
  const std::string body = db->DumpMetrics(obs::MetricsFormat::kJson);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

std::string NextWalPointDir() {
  const std::string base = EnvWalDir();
  if (base.empty()) return base;
  // Fresh directory per point, namespaced per run (time + pid): figures
  // open a new engine per point, and reopening a directory populated by
  // this run — or a previous run against the same SSIDB_WAL_DIR — would
  // recover the old tables into the new point and abort its setup.
  static const std::string run_dir =
      base + "/run-" + std::to_string(::time(nullptr)) + "-" +
      std::to_string(::getpid());
  static std::atomic<uint64_t> point{0};
  return run_dir + "/point-" +
         std::to_string(point.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace ssidb::bench
