// Benchmark accounting: the two quantities the paper's evaluation reports
// for every figure — throughput (commits/second) and the abort breakdown by
// error class (deadlock / FCW conflict / unsafe, §6.1.1).

#ifndef SSIDB_BENCHLIB_STATS_H_
#define SSIDB_BENCHLIB_STATS_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace ssidb::bench {

/// Outcome counts of one measured run at one MPL point.
struct RunResult {
  double seconds = 0;
  uint64_t commits = 0;
  uint64_t deadlocks = 0;         ///< S2PL (and SI writer) lock cycles.
  uint64_t update_conflicts = 0;  ///< First-committer-wins aborts.
  uint64_t unsafe = 0;            ///< SSI dangerous-structure aborts.
  uint64_t timeouts = 0;
  uint64_t app_rollbacks = 0;     ///< Intentional rollbacks (e.g. 1% NEWO).

  // Durable-regime overhead counters, snapshotted from DBStats at the end
  // of the run (absolute for the engine; points use a fresh engine, so
  // they read as per-run totals). Zero in the simulated/in-memory regime.
  uint64_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes_written = 0;
  uint64_t wal_segments_deleted = 0;
  uint64_t versions_pruned = 0;
  /// Group-commit shape over the *measurement window* (delta-derived from
  /// counters snapshotted at window start, so setup/warmup appends cannot
  /// contaminate the ratio): flush batches and the mean records per batch
  /// (what LogOptions::group_commit_wait_us tunes at high MPL).
  uint64_t log_flush_batches = 0;
  double log_mean_batch = 0;

  // Disk-tier counters (DBStats snapshot; zero when the buffer pool is
  // disabled). hit_rate = hits / (hits + misses) when pages were touched.
  uint64_t buffer_pool_hits = 0;
  uint64_t buffer_pool_misses = 0;
  uint64_t buffer_pool_evictions = 0;
  uint64_t buffer_pool_writebacks = 0;
  uint64_t spilled_chains = 0;
  uint64_t faulted_chains = 0;

  /// Commit-path latency over the measurement window (microseconds),
  /// derived from the engine's "commit.total_ns" stage histogram delta.
  /// Zero when the window recorded no samples (commit timing is sampled;
  /// very short windows may record none). max is cumulative across the
  /// engine's lifetime (histogram maxima cannot be windowed).
  double commit_p50_us = 0;
  double commit_p95_us = 0;
  double commit_p99_us = 0;
  double commit_max_us = 0;

  double BufferPoolHitRate() const {
    const uint64_t total = buffer_pool_hits + buffer_pool_misses;
    return total > 0 ? static_cast<double>(buffer_pool_hits) / total : 0;
  }

  uint64_t TotalAborts() const {
    return deadlocks + update_conflicts + unsafe + timeouts;
  }
  double Throughput() const { return seconds > 0 ? commits / seconds : 0; }
  /// The paper's "errors / commit" y-axis (Figs 6.1(b)-6.5(b)).
  double ErrorsPerCommit() const {
    return commits > 0 ? static_cast<double>(TotalAborts()) / commits : 0;
  }

  /// Classify one transaction-attempt outcome into the counters.
  void Count(const Status& status);
};

/// Header + row formatting shared by every figure binary so EXPERIMENTS.md
/// tables can be regenerated with a diff-stable layout.
std::string ResultHeader();
std::string ResultRow(const std::string& figure, const std::string& series,
                      int mpl, const RunResult& r);

/// One measured point as a single-line JSON object (for SSIDB_BENCH_JSON
/// artifacts: one object per line, JSON Lines).
std::string ResultJsonLine(const std::string& figure,
                           const std::string& series, int mpl,
                           const RunResult& r);

}  // namespace ssidb::bench

#endif  // SSIDB_BENCHLIB_STATS_H_
