#include "src/benchlib/stats.h"

#include <cstdio>

namespace ssidb::bench {

void RunResult::Count(const Status& status) {
  if (status.ok()) {
    ++commits;
    return;
  }
  switch (status.code()) {
    case Status::Code::kDeadlock:
      ++deadlocks;
      break;
    case Status::Code::kUpdateConflict:
      ++update_conflicts;
      break;
    case Status::Code::kUnsafe:
      ++unsafe;
      break;
    case Status::Code::kTimedOut:
      ++timeouts;
      break;
    default:
      ++app_rollbacks;
      break;
  }
}

std::string ResultHeader() {
  return "figure,series,mpl,commits_per_sec,deadlocks_per_commit,"
         "conflicts_per_commit,unsafe_per_commit,total_commits";
}

std::string ResultRow(const std::string& figure, const std::string& series,
                      int mpl, const RunResult& r) {
  char buf[256];
  const double c = r.commits > 0 ? static_cast<double>(r.commits) : 1.0;
  snprintf(buf, sizeof(buf), "%s,%s,%d,%.1f,%.4f,%.4f,%.4f,%llu",
           figure.c_str(), series.c_str(), mpl, r.Throughput(),
           r.deadlocks / c, r.update_conflicts / c, r.unsafe / c,
           static_cast<unsigned long long>(r.commits));
  return buf;
}

std::string ResultJsonLine(const std::string& figure,
                           const std::string& series, int mpl,
                           const RunResult& r) {
  char buf[1536];
  snprintf(buf, sizeof(buf),
           "{\"figure\":\"%s\",\"series\":\"%s\",\"mpl\":%d,"
           "\"commits_per_sec\":%.1f,\"seconds\":%.3f,\"commits\":%llu,"
           "\"deadlocks\":%llu,\"update_conflicts\":%llu,\"unsafe\":%llu,"
           "\"timeouts\":%llu,\"checkpoints\":%llu,"
           "\"checkpoint_bytes_written\":%llu,\"wal_segments_deleted\":%llu,"
           "\"versions_pruned\":%llu,\"log_flush_batches\":%llu,"
           "\"log_mean_batch\":%.2f,\"buffer_pool_hits\":%llu,"
           "\"buffer_pool_misses\":%llu,\"buffer_pool_evictions\":%llu,"
           "\"buffer_pool_writebacks\":%llu,\"spilled_chains\":%llu,"
           "\"faulted_chains\":%llu,\"commit_p50_us\":%.2f,"
           "\"commit_p95_us\":%.2f,\"commit_p99_us\":%.2f,"
           "\"commit_max_us\":%.2f}",
           figure.c_str(), series.c_str(), mpl, r.Throughput(), r.seconds,
           static_cast<unsigned long long>(r.commits),
           static_cast<unsigned long long>(r.deadlocks),
           static_cast<unsigned long long>(r.update_conflicts),
           static_cast<unsigned long long>(r.unsafe),
           static_cast<unsigned long long>(r.timeouts),
           static_cast<unsigned long long>(r.checkpoints_taken),
           static_cast<unsigned long long>(r.checkpoint_bytes_written),
           static_cast<unsigned long long>(r.wal_segments_deleted),
           static_cast<unsigned long long>(r.versions_pruned),
           static_cast<unsigned long long>(r.log_flush_batches),
           r.log_mean_batch,
           static_cast<unsigned long long>(r.buffer_pool_hits),
           static_cast<unsigned long long>(r.buffer_pool_misses),
           static_cast<unsigned long long>(r.buffer_pool_evictions),
           static_cast<unsigned long long>(r.buffer_pool_writebacks),
           static_cast<unsigned long long>(r.spilled_chains),
           static_cast<unsigned long long>(r.faulted_chains),
           r.commit_p50_us, r.commit_p95_us, r.commit_p99_us,
           r.commit_max_us);
  return buf;
}

}  // namespace ssidb::bench
