// Benchmark driver: the MPL worker-pool harness the paper's db_perf tool
// provided for Berkeley DB (§6.1) — N client threads execute transactions
// back-to-back with no think time, a warmup phase fills caches, then a
// timed measurement window counts commits and classifies aborts.

#ifndef SSIDB_BENCHLIB_DRIVER_H_
#define SSIDB_BENCHLIB_DRIVER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/benchlib/stats.h"
#include "src/common/options.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "src/db/session.h"

namespace ssidb::bench {

/// One line in a figure: a concurrency-control mode under test.
struct SeriesConfig {
  std::string name;  ///< "S2PL", "SI", "SSI" (figure legend).
  IsolationLevel isolation = IsolationLevel::kSerializableSSI;
  /// §3.8 mixing: run read-only transaction types at this level instead
  /// (e.g. queries at plain SI while updates run Serializable SI).
  std::optional<IsolationLevel> read_only_isolation;

  /// Isolation to use for a transaction program; workloads call this with
  /// read_only=true for query-only programs.
  IsolationLevel For(bool read_only) const {
    return (read_only && read_only_isolation) ? *read_only_isolation
                                              : isolation;
  }
};

/// The three standard series of every figure in Chapter 6.
std::vector<SeriesConfig> StandardSeries();

/// A transaction program mix. One instance is shared by all workers; per
/// worker state lives in the Random and worker_id arguments.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Execute ONE transaction attempt (begin..commit/abort) and return its
  /// outcome. The driver classifies the status and retries aborted work by
  /// simply calling again (the Chapter 6 retry discipline).
  virtual Status RunOne(DB* db, const SeriesConfig& series, uint64_t worker,
                        Random* rng) = 0;

  /// Pipelined attempt (DriverConfig::pipeline_depth > 0): run ONE
  /// transaction and deliver its final status through `done`, exactly
  /// once, possibly on another thread after this returns. The default
  /// runs RunOne to completion and acknowledges inline — correct for any
  /// workload, pipelined for none. Workloads whose programs can commit
  /// asynchronously override this to submit through `session`
  /// (Session::CommitAsync) so the worker keeps many commits in flight.
  virtual void SubmitOne(DB* db, Session* session, const SeriesConfig& series,
                         uint64_t worker, Random* rng,
                         std::function<void(Status)> done) {
    (void)session;
    done(RunOne(db, series, worker, rng));
  }
};

struct DriverConfig {
  int mpl = 1;
  double warmup_seconds = 0.05;
  double measure_seconds = 0.25;
  uint64_t seed = 42;
  /// 0: the classic blocking driver (one transaction in flight per
  /// worker). >0: the pipelined driver — each worker owns a Session and
  /// keeps up to this many submitted-but-unacknowledged transactions in
  /// flight via Workload::SubmitOne, so the durable regime's group-commit
  /// fsync amortizes across the whole window instead of across MPL
  /// threads.
  int pipeline_depth = 0;
};

/// Run `workload` on `db` with config.mpl concurrent workers and return
/// the measured-window counts.
RunResult RunWorkload(DB* db, Workload* workload, const SeriesConfig& series,
                      const DriverConfig& config);

/// Environment knobs shared by the figure binaries:
///   SSIDB_BENCH_SECONDS  - measurement window per point (default `dflt`).
///   SSIDB_BENCH_MPLS     - comma-separated MPL sweep (default `dflt`).
///   SSIDB_FLUSH_US       - simulated log flush latency override.
///   SSIDB_CKPT_INTERVAL_MS - background checkpointer interval for
///                          durable-regime points (incremental
///                          base+delta images; 0/unset = no
///                          checkpointer).
///   SSIDB_WAL_DIR        - base directory for a real file-backed WAL:
///                          flush-on-commit points run against write+fsync
///                          instead of the simulated latency (the durable
///                          regime). Each measurement point uses a fresh
///                          subdirectory. Empty/unset = simulated.
///   SSIDB_BENCH_JSON     - path to append one JSON object per measured
///                          point (JSON Lines) for machine-readable
///                          artifacts next to the CSV on stdout.
///   SSIDB_METRICS_DUMP   - path to write a full DB::DumpMetrics() JSON
///                          snapshot after each run (figure binaries and
///                          micro_ops write one file per run; a numeric
///                          suffix distinguishes points).
double EnvSeconds(double dflt);
std::vector<int> EnvMpls(const std::vector<int>& dflt);
uint32_t EnvFlushUs(uint32_t dflt);
uint32_t EnvCheckpointIntervalMs(uint32_t dflt);
/// SSIDB_GC_WAIT_US: LogOptions::group_commit_wait_us for the adaptive
/// straggler wait (0/unset = classic group commit).
uint32_t EnvGroupCommitWaitUs(uint32_t dflt);
std::string EnvWalDir();

/// SSIDB_METRICS_DUMP: base path for DumpMetrics() snapshots ("" = off).
std::string EnvMetricsDump();

/// SSIDB_PIPELINE: DriverConfig::pipeline_depth (0/unset = blocking).
int EnvPipelineDepth(int dflt);

/// Write db->DumpMetrics() (JSON) to `path` if non-empty. Figure binaries
/// call this with EnvMetricsDump() plus a per-point suffix. Best-effort:
/// failures are ignored (a bench run must not die on a metrics file).
void MaybeDumpMetrics(DB* db, const std::string& path);

/// A fresh per-point WAL directory under EnvWalDir(), or "" when unset.
std::string NextWalPointDir();

}  // namespace ssidb::bench

#endif  // SSIDB_BENCHLIB_DRIVER_H_
