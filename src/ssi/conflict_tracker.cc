#include "src/ssi/conflict_tracker.h"

#include <cassert>

namespace ssidb {

namespace {

/// Only Serializable SI transactions carry conflict state. SI queries mixed
/// into an SSI system (§3.8) and S2PL transactions are transparent to the
/// tracker.
bool Participates(const TxnState& txn) {
  return txn.isolation == IsolationLevel::kSerializableSSI;
}

/// The pairwise atomic block: both endpoints' latches, ascending txn-id
/// order (the deadlock-free total order all pairwise markers agree on; a
/// committing transaction holds only its own latch, so no cycle can form).
class PairLatch {
 public:
  PairLatch(TxnState* a, TxnState* b) : a_(a), b_(b) {
    TxnState* first = a_->id < b_->id ? a_ : b_;
    TxnState* second = a_->id < b_->id ? b_ : a_;
    first->ssi_mu.lock();
    second->ssi_mu.lock();
  }
  ~PairLatch() {
    a_->ssi_mu.unlock();
    b_->ssi_mu.unlock();
  }
  PairLatch(const PairLatch&) = delete;
  PairLatch& operator=(const PairLatch&) = delete;

 private:
  TxnState* const a_;
  TxnState* const b_;
};

}  // namespace

ConflictTracker::ConflictTracker(const DBOptions& options,
                                 TxnManager* txn_manager)
    : options_(options), txn_manager_(txn_manager) {}

void ConflictTracker::TidyRefLocked(ConflictRef* ref) {
  if (ref->kind != ConflictRef::Kind::kOther) return;
  const TxnState& partner = *ref->other;
  const TxnStatus st = partner.status.load(std::memory_order_acquire);
  if (st == TxnStatus::kCommitted) {
    // The thesis's Fig 3.10 lines 9-12, made precise: remember the commit
    // time, drop the pointer so reference chains cannot accumulate.
    ref->Collapse(partner.commit_ts.load(std::memory_order_acquire));
  } else if (st == TxnStatus::kAborted) {
    // Aborted transactions never appear in the MVSG; the edge is gone.
    ref->Clear();
  }
}

void ConflictTracker::SetOutLocked(TxnState* txn,
                                   const std::shared_ptr<TxnState>& partner) {
  if (options_.conflict_tracking == ConflictTracking::kFlags) {
    txn->out_conflict_flag = true;
    return;
  }
  TidyRefLocked(&txn->out_ref);
  ConflictRef& ref = txn->out_ref;
  switch (ref.kind) {
    case ConflictRef::Kind::kNone:
      ref.SetOther(partner);
      break;
    case ConflictRef::Kind::kOther:
      if (ref.other.get() != partner.get()) ref.SetSelf();
      break;
    case ConflictRef::Kind::kCollapsed:
    case ConflictRef::Kind::kSelf:
      // A second, distinct out-conflict: degrade to the conservative
      // multi-conflict representation (Fig 3.9 lines 11-12).
      ref.SetSelf();
      break;
  }
}

void ConflictTracker::SetInLocked(TxnState* txn,
                                  const std::shared_ptr<TxnState>& partner) {
  if (options_.conflict_tracking == ConflictTracking::kFlags) {
    txn->in_conflict_flag = true;
    return;
  }
  TidyRefLocked(&txn->in_ref);
  ConflictRef& ref = txn->in_ref;
  switch (ref.kind) {
    case ConflictRef::Kind::kNone:
      ref.SetOther(partner);
      break;
    case ConflictRef::Kind::kOther:
      if (ref.other.get() != partner.get()) ref.SetSelf();
      break;
    case ConflictRef::Kind::kCollapsed:
    case ConflictRef::Kind::kSelf:
      ref.SetSelf();
      break;
  }
}

ConflictTracker::EdgeTime ConflictTracker::OutEdgeTimeLocked(
    const TxnState& txn) const {
  EdgeTime edge;
  const ConflictRef& ref = txn.out_ref;
  switch (ref.kind) {
    case ConflictRef::Kind::kNone:
      return edge;
    case ConflictRef::Kind::kSelf:
      // Several out-partners: some may have committed arbitrarily early.
      edge.present = true;
      edge.cts = 0;
      return edge;
    case ConflictRef::Kind::kCollapsed:
      edge.present = true;
      edge.cts = ref.collapsed_cts;
      return edge;
    case ConflictRef::Kind::kOther: {
      // Keyed on the published commit timestamp, not the status flip: a
      // partner holding an edge to us is itself a certifying commit
      // (edges are bilateral, so it cannot take the conflict-free fast
      // path), which means its cts is published by the certification
      // stage in commit order relative to this check (commit_combiner.h)
      // and before its status store becomes visible — and once the cts
      // exists the partner commits unconditionally. Reading the status
      // here instead could miss an out-partner that wins a smaller
      // timestamp.
      const Timestamp cts =
          ref.other->commit_ts.load(std::memory_order_acquire);
      if (cts != 0) {
        edge.present = true;
        edge.cts = cts;
        return edge;
      }
      const TxnStatus st = ref.other->status.load(std::memory_order_acquire);
      if (st == TxnStatus::kAborted) return edge;  // Edge vanished.
      edge.present = true;
      edge.cts = kMaxTimestamp;  // Active: has not committed first.
      return edge;
    }
  }
  return edge;
}

ConflictTracker::EdgeTime ConflictTracker::InEdgeTimeLocked(
    const TxnState& txn) const {
  EdgeTime edge;
  const ConflictRef& ref = txn.in_ref;
  switch (ref.kind) {
    case ConflictRef::Kind::kNone:
      return edge;
    case ConflictRef::Kind::kSelf:
      // Several in-partners: some may still be active (commit later than
      // any out-partner), so the edge cannot rule danger out.
      edge.present = true;
      edge.cts = kMaxTimestamp;
      return edge;
    case ConflictRef::Kind::kCollapsed:
      edge.present = true;
      edge.cts = ref.collapsed_cts;
      return edge;
    case ConflictRef::Kind::kOther: {
      // Same cts-first protocol as OutEdgeTimeLocked. For an in-edge a
      // stale "active" read only errs toward kMaxTimestamp, which is the
      // conservative (more-dangerous) direction.
      const Timestamp cts =
          ref.other->commit_ts.load(std::memory_order_acquire);
      if (cts != 0) {
        edge.present = true;
        edge.cts = cts;
        return edge;
      }
      const TxnStatus st = ref.other->status.load(std::memory_order_acquire);
      if (st == TxnStatus::kAborted) return edge;
      edge.present = true;
      edge.cts = kMaxTimestamp;
      return edge;
    }
  }
  return edge;
}

bool ConflictTracker::DangerousLocked(const TxnState& txn,
                                      bool committing_now) const {
  if (options_.conflict_tracking == ConflictTracking::kFlags) {
    return txn.in_conflict_flag && txn.out_conflict_flag;
  }
  const EdgeTime out = OutEdgeTimeLocked(txn);
  if (!out.present || out.cts == kMaxTimestamp) {
    // No out-edge, or the out-partner has not committed: it cannot have
    // committed first of the structure (§3.6).
    return false;
  }
  const EdgeTime in = InEdgeTimeLocked(txn);
  if (!in.present) return false;
  const Timestamp own_cts =
      (committing_now || !txn.IsCommitted())
          ? kMaxTimestamp
          : txn.commit_ts.load(std::memory_order_acquire);
  // Fig 3.10 line 4: dangerous iff the out-partner committed no later than
  // the in-partner (and before the pivot itself).
  return out.cts <= in.cts && out.cts <= own_cts;
}

Status ConflictTracker::AbortVictimLocked(TxnState* caller, TxnState* pivot,
                                          TxnState* reader, TxnState* writer) {
  unsafe_aborts_.fetch_add(1, std::memory_order_relaxed);

  TxnState* counterpart = (pivot == reader) ? writer : reader;
  TxnState* victim = nullptr;
  if (!pivot->IsActive()) {
    // The pivot already committed; the only abortable member of the newly
    // completed structure is the other endpoint of this edge — which is
    // always the caller (§3.4: "the transaction responsible for the last
    // detected dependency will be aborted").
    victim = counterpart;
  } else {
    switch (options_.victim_policy) {
      case VictimPolicy::kPivot:
        victim = pivot;
        break;
      case VictimPolicy::kYoungest: {
        victim = pivot;
        if (counterpart->IsActive() && counterpart->id > pivot->id) {
          victim = counterpart;
        }
        break;
      }
    }
  }
  assert(victim != nullptr && victim->IsActive());
  // Forensics: classify the victim by its position in the dangerous
  // structure. The edge is reader ->rw-> writer; if the victim is the
  // pivot itself that is the classification, otherwise the victim is the
  // edge's other endpoint: with the pivot reading, the victim wrote the
  // pivot's out-edge (T_out); with the pivot writing, the victim read the
  // pivot's in-edge (T_in).
  TxnState* other = (victim == pivot) ? counterpart : pivot;
  const AbortReason why = (victim == pivot)     ? AbortReason::kSsiPivot
                          : (pivot == reader)   ? AbortReason::kSsiOutSide
                                                : AbortReason::kSsiInSide;
  victim->SetAbortCause(why, other->id);
  if (victim == caller) {
    return Status::Unsafe("dangerous structure: consecutive rw-conflicts");
  }
  // The reason must be written before the release store: the victim reads
  // it after an acquire load of marked_for_abort, with no common mutex.
  victim->abort_reason =
      Status::Unsafe("dangerous structure: chosen as victim");
  victim->marked_for_abort.store(true, std::memory_order_release);
  return Status::OK();
}

Status ConflictTracker::MarkLocked(TxnState* caller,
                                   const std::shared_ptr<TxnState>& reader,
                                   const std::shared_ptr<TxnState>& writer) {
  if (reader.get() == writer.get()) return Status::OK();
  // §4.6: conflicts are not recorded against transactions already destined
  // to abort.
  for (const TxnState* t : {reader.get(), writer.get()}) {
    if (t->status.load(std::memory_order_acquire) == TxnStatus::kAborted ||
        t->marked_for_abort.load(std::memory_order_acquire)) {
      return Status::OK();
    }
  }

  const bool flags_mode =
      options_.conflict_tracking == ConflictTracking::kFlags;

  // Fig 3.3 (basic): a committed pivot can no longer abort itself; its
  // still-active counterpart must go instead.
  if (flags_mode) {
    if (writer->IsCommitted() && writer->out_conflict_flag) {
      unsafe_aborts_.fetch_add(1, std::memory_order_relaxed);
      assert(caller == reader.get());
      // The caller read into a committed pivot: it is the T_in side.
      caller->SetAbortCause(AbortReason::kSsiInSide, writer->id);
      return Status::Unsafe("committed pivot (writer) has out-conflict");
    }
    if (reader->IsCommitted() && reader->in_conflict_flag) {
      unsafe_aborts_.fetch_add(1, std::memory_order_relaxed);
      assert(caller == writer.get());
      // The caller wrote out of a committed pivot: it is the T_out side.
      caller->SetAbortCause(AbortReason::kSsiOutSide, reader->id);
      return Status::Unsafe("committed pivot (reader) has in-conflict");
    }
  }

  // Record the rw-antidependency reader -> writer — tentatively: §3.7.1
  // says conflicts are never recorded against transactions that will abort
  // because of them, so if the edge completes a dangerous structure we
  // abort the victim and roll the recording back (the victim's edges never
  // enter the MVSG, and the survivor must not carry a dead edge into its
  // own commit check).
  const bool saved_reader_out_flag = reader->out_conflict_flag;
  const bool saved_writer_in_flag = writer->in_conflict_flag;
  const ConflictRef saved_reader_out = reader->out_ref;
  const ConflictRef saved_writer_in = writer->in_ref;
  SetOutLocked(reader.get(), writer);
  SetInLocked(writer.get(), reader);

  // Evaluate both endpoints as potential pivots. Committed pivots must be
  // resolved now (their own commit check already passed); active pivots are
  // resolved now only under the abort-early optimization (§3.7.1),
  // otherwise at their commit (Fig 3.2 / 3.10).
  for (TxnState* t : {reader.get(), writer.get()}) {
    if (t->IsActive() && !options_.abort_early) continue;
    if (t->marked_for_abort.load(std::memory_order_relaxed)) continue;
    if (DangerousLocked(*t, /*committing_now=*/false)) {
      reader->out_conflict_flag = saved_reader_out_flag;
      writer->in_conflict_flag = saved_writer_in_flag;
      reader->out_ref = saved_reader_out;
      writer->in_ref = saved_writer_in;
      return AbortVictimLocked(caller, t, reader.get(), writer.get());
    }
  }
  return Status::OK();
}

Status ConflictTracker::MarkReadOfNewerVersion(TxnState* reader,
                                               TxnId creator_id,
                                               Timestamp creator_cts) {
  (void)creator_cts;
  if (!Participates(*reader) || creator_id == reader->id) return Status::OK();
  std::shared_ptr<TxnState> creator = txn_manager_->Find(creator_id);
  if (creator == nullptr || !Participates(*creator)) return Status::OK();
  std::shared_ptr<TxnState> reader_ref = txn_manager_->Find(reader->id);
  if (reader_ref == nullptr) return Status::OK();
  PairLatch latch(reader, creator.get());
  // creator_cts > reader's snapshot by construction, so they overlap.
  return MarkLocked(reader, reader_ref, creator);
}

Status ConflictTracker::OnReaderSawExclusiveHolder(TxnState* reader,
                                                   TxnId writer_id) {
  if (!Participates(*reader) || writer_id == reader->id) return Status::OK();
  std::shared_ptr<TxnState> writer = txn_manager_->Find(writer_id);
  if (writer == nullptr || !Participates(*writer)) return Status::OK();
  std::shared_ptr<TxnState> reader_ref = txn_manager_->Find(reader->id);
  if (reader_ref == nullptr) return Status::OK();
  PairLatch latch(reader, writer.get());
  // The holder may have committed between the lock-table snapshot and now;
  // if it committed inside the reader's snapshot there is no
  // antidependency (the reader sees its version). Evaluated under the pair
  // latch so the writer's status cannot transition mid-check.
  if (writer->IsCommitted() &&
      writer->commit_ts.load(std::memory_order_acquire) <=
          reader->read_ts.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  return MarkLocked(reader, reader_ref, writer);
}

Status ConflictTracker::OnWriterSawSIReadHolder(TxnState* writer,
                                                TxnId reader_id) {
  if (!Participates(*writer) || reader_id == writer->id) return Status::OK();
  std::shared_ptr<TxnState> reader = txn_manager_->Find(reader_id);
  if (reader == nullptr || !Participates(*reader)) return Status::OK();
  std::shared_ptr<TxnState> writer_ref = txn_manager_->Find(writer->id);
  if (writer_ref == nullptr) return Status::OK();
  PairLatch latch(writer, reader.get());
  // Fig 3.5: "where rl.owner has not committed or
  // commit(rl.owner) > begin(T)" — only overlapping readers matter. For a
  // writer without a snapshot yet (late allocation, §4.5), the eventual
  // snapshot will be >= the *current* stable watermark (monotonic), so a
  // reader whose commit is already below the watermark provably cannot
  // overlap. A reader committed above the watermark might still be
  // invisible to the writer's eventual snapshot, so its edge must be
  // recorded (possibly a false positive, never a missed conflict).
  if (reader->IsCommitted()) {
    const Timestamp begin = writer->read_ts.load(std::memory_order_acquire);
    const Timestamp floor = begin != 0 ? begin : txn_manager_->stable_ts();
    const Timestamp reader_cts =
        reader->commit_ts.load(std::memory_order_acquire);
    if (reader_cts <= floor) return Status::OK();
  }
  return MarkLocked(writer, reader, writer_ref);
}

Status ConflictTracker::CommitCheck(TxnState* txn) {
  if (!Participates(*txn)) return Status::OK();
  if (options_.conflict_tracking == ConflictTracking::kFlags) {
    if (txn->in_conflict_flag && txn->out_conflict_flag) {
      unsafe_aborts_.fetch_add(1, std::memory_order_relaxed);
      txn->SetAbortCause(AbortReason::kSsiPivot, 0);
      return Status::Unsafe("pivot at commit: in- and out-conflict set");
    }
    return Status::OK();
  }
  TidyRefLocked(&txn->in_ref);
  TidyRefLocked(&txn->out_ref);
  if (DangerousLocked(*txn, /*committing_now=*/true)) {
    unsafe_aborts_.fetch_add(1, std::memory_order_relaxed);
    // References mode may still know the out-partner: record it.
    const TxnId partner = txn->out_ref.kind == ConflictRef::Kind::kOther
                              ? txn->out_ref.other->id
                              : 0;
    txn->SetAbortCause(AbortReason::kSsiPivot, partner);
    return Status::Unsafe("pivot at commit: out-partner committed first");
  }
  return Status::OK();
}

}  // namespace ssidb
