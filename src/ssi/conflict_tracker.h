// ConflictTracker: the Serializable Snapshot Isolation algorithm (Ch. 3).
//
// SSI lets ordinary snapshot isolation run, but records every
// rw-antidependency between concurrent transactions and aborts one
// transaction whenever a single transaction accumulates both an incoming
// and an outgoing antidependency — the pivot of the dangerous structure
// that Fekete et al.'s theorem proves is present in every non-serializable
// SI execution (Theorem 2, §2.5.1). Detection is conservative (no cycle
// tracing), so false positives are possible; the kReferences mode trims
// them using commit-time comparisons (§3.6).
//
// The tracker is invoked from the paper's two detection points:
//   * MarkReadOfNewerVersion - a read ignored a newer committed version
//     (Fig 3.4 lines 8-9);
//   * OnReaderSawExclusiveHolder / OnWriterSawSIReadHolder - the lock
//     manager observed SIREAD and EXCLUSIVE locks coexisting on one key,
//     in either acquisition order (Fig 3.4 line 3 / Fig 3.5 line 4).
// and from the commit path (TxnManager::CommitCheck):
//   * CommitCheck - Fig 3.2 lines 3-5 (kFlags) or Fig 3.10 (kReferences).
//
// Locking: the paper's atomic blocks (§3.2) were a single system mutex in
// the seed; they are now realized *pairwise*. Every mutation of conflict
// state locks the TxnState::ssi_mu latches of both edge endpoints in
// ascending txn-id order; the commit-time check runs under the committing
// transaction's own latch (TxnManager::Commit holds it around the
// CommitCheck hook and the committed transition). Marking therefore still
// serializes with the "mark T as committed" transition of either endpoint,
// closing the §3.2 race without a global lock. Third-party state (the
// commit timestamp/status of a previously recorded partner) is read
// through atomics; a partner committing concurrently is observed either
// before or after — both orders correspond to a legal global schedule of
// the seed's serialized marking. This mirrors the partitioned locking of
// the PostgreSQL SSI implementation (Ports & Grittner, VLDB 2012).
//
// Soundness note on kReferences (documented deviation, DESIGN.md): a
// transaction's dangerous structure is only lethal when its out-partner
// committed first among {in, pivot, out} (§3.6). We evaluate:
//   out side:  kOther(active) => not committed first; kOther/kCollapsed
//              (committed) => its commit time; kSelf => conservatively 0.
//   in side:   kOther(active)/kSelf => +inf; committed => commit time.
// Multi-conflict transactions therefore degrade to the basic-flag
// behaviour instead of adopting the thesis's literal self-commit-time
// rule, which can underestimate danger on the out side.

#ifndef SSIDB_SSI_CONFLICT_TRACKER_H_
#define SSIDB_SSI_CONFLICT_TRACKER_H_

#include <memory>

#include "src/common/options.h"
#include "src/common/status.h"
#include "src/txn/txn_manager.h"

namespace ssidb {

class ConflictTracker {
 public:
  ConflictTracker(const DBOptions& options, TxnManager* txn_manager);

  /// A read by `reader` ignored a newer committed version created by
  /// `creator_id` (commit time `creator_cts` > reader's snapshot): an
  /// rw-antidependency reader -> creator. Returns kUnsafe if the *reader*
  /// must abort; other victims are marked asynchronously.
  Status MarkReadOfNewerVersion(TxnState* reader, TxnId creator_id,
                                Timestamp creator_cts);

  /// `reader`'s SIREAD acquisition found `writer_id` holding EXCLUSIVE on
  /// the same key (Fig 3.4 line 3). Returns kUnsafe if the reader must
  /// abort.
  Status OnReaderSawExclusiveHolder(TxnState* reader, TxnId writer_id);

  /// `writer`'s EXCLUSIVE acquisition found `reader_id` holding SIREAD on
  /// the same key (Fig 3.5 line 4). The overlap filter of Fig 3.5
  /// ("rl.owner has not committed or commit(rl.owner) > begin(T)") is
  /// applied here. Returns kUnsafe if the writer must abort.
  Status OnWriterSawSIReadHolder(TxnState* writer, TxnId reader_id);

  /// The commit-time dangerous-structure test; wire into
  /// TxnManager::Commit as the CommitCheck hook. The caller must hold
  /// txn->ssi_mu (TxnManager::Commit does). In kReferences mode this also
  /// collapses references to committed partners (the thesis's Fig 3.10
  /// lines 9-12).
  Status CommitCheck(TxnState* txn);

  /// Number of dangerous structures detected (aborts issued), for tests.
  uint64_t unsafe_aborts() const {
    return unsafe_aborts_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared marking body. `caller` is the transaction executing on this
  /// thread; exactly one of reader/writer equals caller. Caller must hold
  /// both endpoints' ssi_mu latches.
  Status MarkLocked(TxnState* caller, const std::shared_ptr<TxnState>& reader,
                    const std::shared_ptr<TxnState>& writer);

  /// True if `txn` currently has both an in- and an out-conflict whose
  /// commit-time pattern is (or may be) dangerous. `committing_now` means
  /// the transaction is at its commit point (its own timestamp is later
  /// than every existing one).
  bool DangerousLocked(const TxnState& txn, bool committing_now) const;

  /// Effective commit time of an out-/in-conflict edge for the danger
  /// test; kMaxTimestamp when absent or not constraining.
  struct EdgeTime {
    bool present = false;
    Timestamp cts = kMaxTimestamp;  // kMaxTimestamp => not committed (yet)
  };
  EdgeTime OutEdgeTimeLocked(const TxnState& txn) const;
  EdgeTime InEdgeTimeLocked(const TxnState& txn) const;

  /// Record an edge endpoint in the mode-appropriate representation.
  void SetOutLocked(TxnState* txn, const std::shared_ptr<TxnState>& partner);
  void SetInLocked(TxnState* txn, const std::shared_ptr<TxnState>& partner);

  /// Drop shared_ptrs to finished partners (collapse committed ones to
  /// their commit time, clear aborted ones).
  static void TidyRefLocked(ConflictRef* ref);

  /// Pick and dispatch the victim once `pivot` is dangerous. Returns
  /// kUnsafe if the victim is `caller`; otherwise marks the victim and
  /// returns OK.
  Status AbortVictimLocked(TxnState* caller, TxnState* pivot,
                           TxnState* reader, TxnState* writer);

  const DBOptions options_;
  TxnManager* const txn_manager_;
  std::atomic<uint64_t> unsafe_aborts_{0};
};

}  // namespace ssidb

#endif  // SSIDB_SSI_CONFLICT_TRACKER_H_
