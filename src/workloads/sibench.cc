#include "src/workloads/sibench.h"

#include <limits>

#include "src/common/encoding.h"

namespace ssidb::workloads {

namespace {

std::string EncodeValue(int64_t v) {
  std::string s;
  PutI64(&s, v);
  return s;
}

bool DecodeValue(Slice s, int64_t* v) {
  size_t off = 0;
  return GetI64(s, &off, v);
}

}  // namespace

Status SiBench::Setup(DB* db, const SiBenchConfig& config,
                      std::unique_ptr<SiBench>* workload) {
  if (config.items == 0) {
    return Status::InvalidArgument("sibench needs at least one row");
  }
  std::unique_ptr<SiBench> sb(new SiBench(config));
  Status st = db->CreateTable("sitest", &sb->table_);
  if (!st.ok()) return st;

  auto txn = db->Begin({IsolationLevel::kSnapshot});
  for (uint64_t i = 0; i < config.items; ++i) {
    st = txn->Insert(sb->table_, EncodeU64Key(i), EncodeValue(0));
    if (!st.ok()) return st;
  }
  st = txn->Commit();
  if (!st.ok()) return st;
  *workload = std::move(sb);
  return Status::OK();
}

Status SiBench::MinValueQuery(DB* db, const bench::SeriesConfig& series,
                              uint64_t* min_id) {
  auto txn = db->Begin({series.For(/*read_only=*/true)});
  int64_t best = std::numeric_limits<int64_t>::max();
  uint64_t best_id = 0;
  Status st = txn->Scan(
      table_, EncodeU64Key(0), EncodeU64Key(UINT64_MAX),
      [&best, &best_id](Slice key, Slice value) {
        int64_t v = 0;
        if (DecodeValue(value, &v) && v < best) {
          best = v;
          best_id = DecodeU64Key(key);
        }
        return true;
      });
  if (!st.ok()) {
    if (txn->active()) txn->Abort();
    return st;
  }
  st = txn->Commit();
  if (st.ok() && min_id != nullptr) *min_id = best_id;
  return st;
}

Status SiBench::IncrementValue(DB* db, const bench::SeriesConfig& series,
                               uint64_t id) {
  auto txn = db->Begin({series.For(/*read_only=*/false)});
  std::string v;
  // The paper's UPDATE statement is a locking read (§2.6.2): the
  // EXCLUSIVE lock is taken up front, so concurrent increments of one
  // item serialize on the row lock instead of deadlocking in the S2PL
  // shared→exclusive upgrade, and under SI/SSI the §4.5 lock-then-
  // snapshot order makes first-committer-wins aborts impossible here.
  Status st = txn->GetForUpdate(table_, EncodeU64Key(id), &v);
  int64_t value = 0;
  if (st.ok() && !DecodeValue(v, &value)) {
    st = Status::InvalidArgument("corrupt sibench value");
  }
  if (st.ok()) {
    st = txn->Put(table_, EncodeU64Key(id), EncodeValue(value + 1));
  }
  if (!st.ok()) {
    if (txn->active()) txn->Abort();
    return st;
  }
  return txn->Commit();
}

Status SiBench::RunOne(DB* db, const bench::SeriesConfig& series,
                       uint64_t worker, Random* rng) {
  (void)worker;
  // queries_per_update q means a q:1 query:update mix in expectation.
  const uint64_t q = config_.queries_per_update;
  if (rng->Uniform(q + 1) < q) {
    return MinValueQuery(db, series, nullptr);
  }
  return IncrementValue(db, series, rng->Uniform(config_.items));
}

void SiBench::SubmitOne(DB* db, Session* session,
                        const bench::SeriesConfig& series, uint64_t worker,
                        Random* rng, std::function<void(Status)> done) {
  (void)worker;
  const uint64_t q = config_.queries_per_update;
  if (rng->Uniform(q + 1) < q) {
    done(MinValueQuery(db, series, nullptr));
    return;
  }
  // IncrementValue, restated against the session API with the commit
  // asynchronous. Any pre-commit failure aborts and acknowledges inline.
  const uint64_t id = rng->Uniform(config_.items);
  const TxnHandle h = session->Begin({series.For(/*read_only=*/false)});
  std::string v;
  Status st = session->GetForUpdate(h, table_, EncodeU64Key(id), &v);
  int64_t value = 0;
  if (st.ok() && !DecodeValue(v, &value)) {
    st = Status::InvalidArgument("corrupt sibench value");
  }
  if (st.ok()) {
    st = session->Put(h, table_, EncodeU64Key(id), EncodeValue(value + 1));
  }
  if (!st.ok()) {
    session->Abort(h);  // No-op if the failed operation already retired h.
    done(st);
    return;
  }
  session->CommitAsync(h, std::move(done));
}

Status SiBench::SumValues(DB* db, int64_t* sum) {
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  int64_t total = 0;
  Status st = txn->Scan(table_, EncodeU64Key(0), EncodeU64Key(UINT64_MAX),
                        [&total](Slice, Slice value) {
                          int64_t v = 0;
                          if (DecodeValue(value, &v)) total += v;
                          return true;
                        });
  if (!st.ok()) {
    txn->Abort();
    return st;
  }
  st = txn->Commit();
  if (st.ok() && sum != nullptr) *sum = total;
  return st;
}

}  // namespace ssidb::workloads
