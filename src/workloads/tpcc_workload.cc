#include "src/workloads/tpcc_workload.h"

#include <algorithm>

namespace ssidb::workloads::tpcc {

Status TpccWorkload::Setup(DB* db, const TpccConfig& config, uint64_t seed,
                           std::unique_ptr<TpccWorkload>* workload) {
  std::unique_ptr<TpccWorkload> w(new TpccWorkload());
  Status st = LoadTpcc(db, config, seed, &w->tables_);
  if (!st.ok()) return st;
  w->ctx_.db = db;
  w->ctx_.tables = &w->tables_;
  w->ctx_.config = config;
  *workload = std::move(w);
  return Status::OK();
}

TpccOp TpccWorkload::NextOp(Random* rng) const {
  if (ctx_.config.mix == Mix::kStockLevel) {
    // §5.3.5: 10 Stock Level transactions per New Order.
    return rng->Uniform(11) == 0 ? TpccOp::kNewOrder : TpccOp::kStockLevel;
  }
  // §5.3.4: Credit Check slots in at Delivery's 4%, Payment keeps "at
  // least 43%": 41/43/4/4/4/4.
  const uint64_t roll = rng->Uniform(100);
  if (roll < 41) return TpccOp::kNewOrder;
  if (roll < 84) return TpccOp::kPayment;
  if (roll < 88) return TpccOp::kCreditCheck;
  if (roll < 92) return TpccOp::kDelivery;
  if (roll < 96) return TpccOp::kOrderStatus;
  return TpccOp::kStockLevel;
}

CustomerSelector TpccWorkload::RandomCustomer(Random* rng) const {
  const TpccConfig& cfg = ctx_.config;
  CustomerSelector sel;
  sel.w = static_cast<uint32_t>(rng->UniformRange(1, cfg.warehouses));
  sel.d =
      static_cast<uint32_t>(rng->UniformRange(1, kDistrictsPerWarehouse));
  // Spec 2.5.1.2: 60% by last name, 40% by id. Names beyond the loaded
  // population do not exist, so cap the NURand range at the names present.
  sel.by_name = rng->Bernoulli(0.60);
  if (sel.by_name) {
    const uint32_t max_name =
        std::min<uint32_t>(999, cfg.customers_per_district() - 1);
    sel.last_name =
        LastName(static_cast<uint32_t>(rng->NURand(255, 0, max_name)));
  } else {
    sel.c_id = static_cast<uint32_t>(
        rng->NURand(1023, 1, cfg.customers_per_district()));
  }
  return sel;
}

NewOrderInput TpccWorkload::RandomNewOrder(Random* rng) const {
  const TpccConfig& cfg = ctx_.config;
  NewOrderInput in;
  in.w = static_cast<uint32_t>(rng->UniformRange(1, cfg.warehouses));
  in.d = static_cast<uint32_t>(rng->UniformRange(1, kDistrictsPerWarehouse));
  in.c = static_cast<uint32_t>(
      rng->NURand(1023, 1, cfg.customers_per_district()));
  const int ol_cnt = static_cast<int>(rng->UniformRange(5, 15));
  in.lines.reserve(ol_cnt);
  for (int i = 0; i < ol_cnt; ++i) {
    NewOrderLine line;
    line.i_id = static_cast<uint32_t>(rng->NURand(8191, 1, cfg.items()));
    // Spec 2.4.1.5: 1% of orders reference a remote warehouse per line.
    line.supply_w = in.w;
    if (cfg.warehouses > 1 && rng->Bernoulli(0.01)) {
      do {
        line.supply_w =
            static_cast<uint32_t>(rng->UniformRange(1, cfg.warehouses));
      } while (line.supply_w == in.w);
    }
    line.quantity = static_cast<int32_t>(rng->UniformRange(1, 10));
    in.lines.push_back(line);
  }
  // Spec 2.4.1.4: 1% of New Orders use an unused item id on the last line,
  // forcing an intentional rollback.
  if (rng->Bernoulli(0.01)) in.lines.back().i_id = cfg.items() + 1;
  return in;
}

PaymentInput TpccWorkload::RandomPayment(Random* rng) const {
  const TpccConfig& cfg = ctx_.config;
  PaymentInput in;
  in.w = static_cast<uint32_t>(rng->UniformRange(1, cfg.warehouses));
  in.d = static_cast<uint32_t>(rng->UniformRange(1, kDistrictsPerWarehouse));
  in.customer = RandomCustomer(rng);
  // Spec 2.5.1.2: 85% of payments are for the home warehouse/district.
  if (cfg.warehouses == 1 || rng->Bernoulli(0.85)) {
    in.customer.w = in.w;
    in.customer.d = in.d;
  }
  in.amount_cents = rng->UniformRange(100, 500000);
  return in;
}

Status TpccWorkload::RunOp(DB* db, const bench::SeriesConfig& series,
                           TpccOp op, Random* rng) {
  (void)db;
  const TpccConfig& cfg = ctx_.config;
  switch (op) {
    case TpccOp::kNewOrder:
      return NewOrder(ctx_, series.For(false), RandomNewOrder(rng), nullptr);
    case TpccOp::kPayment:
      return Payment(ctx_, series.For(false), RandomPayment(rng));
    case TpccOp::kCreditCheck: {
      CreditCheckInput in;
      in.w = static_cast<uint32_t>(rng->UniformRange(1, cfg.warehouses));
      in.d = static_cast<uint32_t>(
          rng->UniformRange(1, kDistrictsPerWarehouse));
      in.c = static_cast<uint32_t>(
          rng->NURand(1023, 1, cfg.customers_per_district()));
      return CreditCheck(ctx_, series.For(false), in, nullptr);
    }
    case TpccOp::kDelivery: {
      DeliveryInput in;
      in.w = static_cast<uint32_t>(rng->UniformRange(1, cfg.warehouses));
      in.carrier_id = static_cast<uint32_t>(rng->UniformRange(1, 10));
      return Delivery(ctx_, series.For(false), in, nullptr);
    }
    case TpccOp::kOrderStatus:
      return OrderStatus(ctx_, series.For(true), RandomCustomer(rng),
                         nullptr);
    case TpccOp::kStockLevel: {
      StockLevelInput in;
      in.w = static_cast<uint32_t>(rng->UniformRange(1, cfg.warehouses));
      in.d = static_cast<uint32_t>(
          rng->UniformRange(1, kDistrictsPerWarehouse));
      in.threshold = static_cast<int32_t>(rng->UniformRange(10, 20));
      return StockLevel(ctx_, series.For(true), in, nullptr);
    }
  }
  return Status::InvalidArgument("unknown op");
}

Status TpccWorkload::RunOne(DB* db, const bench::SeriesConfig& series,
                            uint64_t worker, Random* rng) {
  (void)worker;
  return RunOp(db, series, NextOp(rng), rng);
}

Status TpccWorkload::CheckConsistency(DB* db) {
  const TpccConfig& cfg = ctx_.config;
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  for (uint32_t w = 1; w <= cfg.warehouses; ++w) {
    // Spec consistency condition 1: W_YTD == sum(D_YTD) of the warehouse's
    // districts (both fed by the same Payments, unless skip_ytd_updates).
    int64_t w_ytd = 0;
    {
      std::string v;
      Status st = txn->Get(tables_.warehouse, WarehouseKey(w), &v);
      if (!st.ok()) return st;
      WarehouseRow row;
      if (!WarehouseRow::Decode(v, &row)) {
        return Status::InvalidArgument("corrupt warehouse row");
      }
      w_ytd = row.ytd_cents - 30000000;  // Subtract the loaded seed value.
    }
    int64_t d_ytd_sum = 0;
    for (uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      std::string v;
      Status st = txn->Get(tables_.district, DistrictKey(w, d), &v);
      if (!st.ok()) return st;
      DistrictRow row;
      if (!DistrictRow::Decode(v, &row)) {
        return Status::InvalidArgument("corrupt district row");
      }
      d_ytd_sum += row.ytd_cents - 3000000;
    }
    if (w_ytd != d_ytd_sum) {
      return Status::InvalidArgument("W_YTD != sum(D_YTD)");
    }
    for (uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      std::string v;
      Status st = txn->Get(tables_.district, DistrictKey(w, d), &v);
      if (!st.ok()) return st;
      DistrictRow district;
      if (!DistrictRow::Decode(v, &district)) {
        return Status::InvalidArgument("corrupt district");
      }
      // Every order id below d_next_o_id must exist, exactly once.
      uint32_t count = 0;
      uint32_t max_o = 0;
      st = txn->Scan(tables_.order, OrderKey(w, d, 0),
                     OrderKey(w, d, UINT32_MAX),
                     [&count, &max_o](Slice key, Slice) {
                       ++count;
                       max_o = OrderIdFromKey(key);
                       return true;
                     });
      if (!st.ok()) return st;
      if (count != district.next_o_id - 1 || max_o != district.next_o_id - 1) {
        return Status::InvalidArgument(
            "order table inconsistent with d_next_o_id");
      }
      // Undelivered orders must have new_order rows with carrier 0.
      st = txn->Scan(
          tables_.new_order, NewOrderKey(w, d, 0),
          NewOrderKey(w, d, UINT32_MAX), [&](Slice key, Slice) {
            const uint32_t o = OrderIdFromKey(key);
            std::string ov;
            Status gst = txn->Get(tables_.order, OrderKey(w, d, o), &ov);
            OrderRow order;
            if (!gst.ok() || !OrderRow::Decode(ov, &order) ||
                order.carrier_id != 0) {
              max_o = UINT32_MAX;  // Signal failure through the capture.
              return false;
            }
            return true;
          });
      if (!st.ok()) return st;
      if (max_o == UINT32_MAX) {
        return Status::InvalidArgument("new_order row for delivered order");
      }
    }
  }
  return txn->Commit();
}

}  // namespace ssidb::workloads::tpcc
