// The SmallBank benchmark (paper §2.8.2-§2.8.5, §5.1): a simple banking
// mix of five transaction programs over Account/Saving/Checking tables,
// designed (Alomari et al. 2008) so that it is NOT serializable under SI —
// the dangerous structure Bal -> WC -> TS -> Bal makes WriteCheck a pivot.
//
// The implementation is the paper's §5.1.1 translation of the SQL programs
// into key/value engine calls, exactly as the thesis did for Berkeley DB.
// §2.8.5's four serializability fixes for plain SI (materialize/promote on
// either vulnerable edge) are available for the ablation benches.

#ifndef SSIDB_WORKLOADS_SMALLBANK_H_
#define SSIDB_WORKLOADS_SMALLBANK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/benchlib/driver.h"
#include "src/db/db.h"

namespace ssidb::workloads {

/// §2.8.5: how to make plain SI serializable by modifying the programs.
/// kNone leaves the anomaly in place (the configuration the paper uses to
/// compare SI against Serializable SI / S2PL).
enum class SmallBankFix {
  kNone,
  /// Materialize the WriteCheck->TransactSaving conflict in a Conflict
  /// table row keyed by customer.
  kMaterializeWT,
  /// Identity write ("promotion") of the Saving row in WriteCheck.
  kPromoteWT,
  /// Promotion via a locking read (the paper's "SELECT FOR UPDATE on some
  /// systems", §2.6.2/§2.8.5): WriteCheck reads Saving with GetForUpdate.
  kPromoteWTSelectForUpdate,
  /// Materialize the Balance->WriteCheck conflict.
  kMaterializeBW,
  /// Promotion: Balance updates the Checking row it read (the technique
  /// vendor documentation recommends; §2.8.5 shows it is the slowest).
  kPromoteBW,
};

struct SmallBankConfig {
  /// Number of customers. 2000 customers at 20 rows/page reproduce the
  /// paper's ~100-leaf-page hot tables (§6.1.2); multiply by 10 for the
  /// low-contention experiments (Fig 6.4/6.5).
  uint64_t customers = 2000;
  /// SmallBank operations per database transaction; 1 for Figs 6.1-6.2,
  /// 10 for the complex-transaction workloads (Fig 6.3/6.5).
  int ops_per_txn = 1;
  SmallBankFix fix = SmallBankFix::kNone;
};

/// Transaction program ids, for tests that force a specific program.
enum class SmallBankOp { kBalance, kDepositChecking, kTransactSaving,
                         kAmalgamate, kWriteCheck };

class SmallBank : public bench::Workload {
 public:
  /// Creates the tables and loads `config.customers` rows into each.
  /// Initial balances are generous so overdrafts stay rare.
  static Status Setup(DB* db, const SmallBankConfig& config,
                      std::unique_ptr<SmallBank>* workload);

  Status RunOne(DB* db, const bench::SeriesConfig& series, uint64_t worker,
                Random* rng) override;

  /// Run one specific program for customer ids (tests / interleaving
  /// harness). `n2` is used by Amalgamate only.
  Status RunOp(DB* db, const bench::SeriesConfig& series, SmallBankOp op,
               uint64_t n1, uint64_t n2, int64_t amount_cents);

  /// Consistency oracle: sum of all balances across Saving and Checking.
  /// Under serializable isolation the sum is invariant modulo the deposits
  /// and penalties applied; tests track the expected delta.
  Status TotalBalance(DB* db, int64_t* cents);

  const SmallBankConfig& config() const { return config_; }
  TableId account_table() const { return account_; }
  TableId saving_table() const { return saving_; }
  TableId checking_table() const { return checking_; }

 private:
  SmallBank(const SmallBankConfig& config) : config_(config) {}

  /// Account.Name -> CustomerID lookup (every program's first step).
  Status LookupCustomer(Transaction* txn, Slice name, uint64_t* id);

  Status Balance(Transaction* txn, uint64_t id, int64_t* total);
  Status DepositChecking(Transaction* txn, uint64_t id, int64_t v);
  Status TransactSaving(Transaction* txn, uint64_t id, int64_t v);
  Status Amalgamate(Transaction* txn, uint64_t id1, uint64_t id2);
  Status WriteCheck(Transaction* txn, uint64_t id, int64_t v);

  /// §2.8.5 fix hooks, called by the programs when config_.fix demands.
  Status MaterializeConflict(Transaction* txn, uint64_t id);

  static std::string NameKey(uint64_t customer);

  SmallBankConfig config_;
  TableId account_ = 0;
  TableId saving_ = 0;
  TableId checking_ = 0;
  TableId conflict_ = 0;  ///< §2.6.1 materialization table.
};

}  // namespace ssidb::workloads

#endif  // SSIDB_WORKLOADS_SMALLBANK_H_
