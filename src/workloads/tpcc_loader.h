// TPC-C++ data generator and loader (§5.3.6 data scaling).
//
// The scale is driven by W, the warehouse count, and the `tiny` flag:
// standard scale keeps the spec cardinalities (3000 customers/district,
// 100k items), tiny scale divides customers by 30 and items by 100 so that
// contention can be raised without growing the data volume — the knob the
// thesis used to separate contention effects from data-size effects
// (Figs 6.15, 6.16, 6.18).

#ifndef SSIDB_WORKLOADS_TPCC_LOADER_H_
#define SSIDB_WORKLOADS_TPCC_LOADER_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/db/db.h"
#include "src/workloads/tpcc_schema.h"

namespace ssidb::workloads::tpcc {

/// Transaction mix selector (§5.3.4 / §5.3.5).
enum class Mix {
  /// TPC-C proportions with Credit Check at Delivery frequency:
  /// 41% NEWO, 43% PAY, 4% CCHECK, 4% DLVY, 4% OSTAT, 4% SLEV.
  kStandard,
  /// §5.3.5: only New Order and Stock Level, 10 SLEV per NEWO — the
  /// read-mostly configuration that maximises rw-conflicts.
  kStockLevel,
};

struct TpccConfig {
  uint32_t warehouses = 1;
  /// §5.3.6 tiny scaling: 100 customers/district, 1000 items.
  bool tiny = false;
  /// §5.3.1: omit the w_ytd / d_ytd updates in Payment, removing the
  /// write-write hotspot every pair of Payments shares (Figs 6.12/6.14/6.16).
  bool skip_ytd_updates = false;
  Mix mix = Mix::kStandard;

  uint32_t customers_per_district() const { return tiny ? 100 : 3000; }
  uint32_t items() const { return tiny ? 1000 : 100000; }
  /// Initial orders per district == customer count (spec clause 4.3.3.1).
  uint32_t initial_orders() const { return customers_per_district(); }
};

/// Table handles plus the client-side caches §5.3.1 allows.
struct TpccTables {
  TableId warehouse = 0;
  TableId district = 0;
  TableId customer = 0;
  /// The §5.3.3 c_credit partition (see tpcc_schema.h).
  TableId customer_credit = 0;
  TableId customer_name = 0;
  TableId item = 0;
  TableId stock = 0;
  TableId order = 0;
  TableId order_customer = 0;
  TableId new_order = 0;
  TableId order_line = 0;

  /// w_tax by warehouse id (1-based); cached per §5.3.1 so New Order does
  /// not read the hot Warehouse row.
  std::vector<int64_t> warehouse_tax_bp;
};

/// Create all tables and load the initial population for `config`.
/// Deterministic for a given `seed`.
Status LoadTpcc(DB* db, const TpccConfig& config, uint64_t seed,
                TpccTables* tables);

}  // namespace ssidb::workloads::tpcc

#endif  // SSIDB_WORKLOADS_TPCC_LOADER_H_
