#include "src/workloads/tpcc_schema.h"

#include "src/common/encoding.h"

namespace ssidb::workloads::tpcc {

namespace {

void AppendTerminated(std::string* dst, Slice s) {
  dst->append(s.data(), s.size());
  dst->push_back('\0');
}

}  // namespace

std::string WarehouseKey(uint32_t w) {
  std::string k;
  PutBig32(&k, w);
  return k;
}

std::string DistrictKey(uint32_t w, uint32_t d) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, d);
  return k;
}

std::string CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, d);
  PutBig32(&k, c);
  return k;
}

std::string CustomerNameKey(uint32_t w, uint32_t d, Slice last, uint32_t c) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, d);
  AppendTerminated(&k, last);
  PutBig32(&k, c);
  return k;
}

std::string CustomerNamePrefix(uint32_t w, uint32_t d, Slice last) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, d);
  AppendTerminated(&k, last);
  return k;
}

std::string ItemKey(uint32_t i) {
  std::string k;
  PutBig32(&k, i);
  return k;
}

std::string StockKey(uint32_t w, uint32_t i) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, i);
  return k;
}

std::string OrderKey(uint32_t w, uint32_t d, uint32_t o) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, d);
  PutBig32(&k, o);
  return k;
}

std::string OrderCustomerKey(uint32_t w, uint32_t d, uint32_t c, uint32_t o) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, d);
  PutBig32(&k, c);
  PutBig32(&k, o);
  return k;
}

std::string NewOrderKey(uint32_t w, uint32_t d, uint32_t o) {
  return OrderKey(w, d, o);
}

std::string OrderLineKey(uint32_t w, uint32_t d, uint32_t o, uint32_t ol) {
  std::string k;
  PutBig32(&k, w);
  PutBig32(&k, d);
  PutBig32(&k, o);
  PutBig32(&k, ol);
  return k;
}

uint32_t OrderIdFromKey(Slice key) {
  // The order id is always the final big-endian u32 component.
  size_t off = key.size() - 4;
  uint32_t o = 0;
  GetBig32(key, &off, &o);
  return o;
}

// --- Row encodings ---------------------------------------------------------

std::string WarehouseRow::Encode() const {
  std::string v;
  PutLengthPrefixed(&v, name);
  PutI64(&v, tax_bp);
  PutI64(&v, ytd_cents);
  return v;
}

bool WarehouseRow::Decode(Slice v, WarehouseRow* row) {
  size_t off = 0;
  return GetLengthPrefixed(v, &off, &row->name) &&
         GetI64(v, &off, &row->tax_bp) && GetI64(v, &off, &row->ytd_cents);
}

std::string DistrictRow::Encode() const {
  std::string v;
  PutLengthPrefixed(&v, name);
  PutI64(&v, tax_bp);
  PutI64(&v, ytd_cents);
  PutBig32(&v, next_o_id);
  return v;
}

bool DistrictRow::Decode(Slice v, DistrictRow* row) {
  size_t off = 0;
  return GetLengthPrefixed(v, &off, &row->name) &&
         GetI64(v, &off, &row->tax_bp) && GetI64(v, &off, &row->ytd_cents) &&
         GetBig32(v, &off, &row->next_o_id);
}

std::string EncodeCredit(Credit credit) {
  return std::string(1, static_cast<char>(credit));
}

bool DecodeCredit(Slice v, Credit* credit) {
  if (v.size() != 1) return false;
  *credit = static_cast<Credit>(v[0]);
  return true;
}

std::string CustomerRow::Encode() const {
  std::string v;
  PutLengthPrefixed(&v, first);
  PutLengthPrefixed(&v, last);
  PutI64(&v, credit_lim_cents);
  PutI64(&v, discount_bp);
  PutI64(&v, balance_cents);
  PutI64(&v, ytd_payment_cents);
  PutBig32(&v, payment_cnt);
  PutBig32(&v, delivery_cnt);
  return v;
}

bool CustomerRow::Decode(Slice v, CustomerRow* row) {
  size_t off = 0;
  if (!GetLengthPrefixed(v, &off, &row->first) ||
      !GetLengthPrefixed(v, &off, &row->last)) {
    return false;
  }
  return GetI64(v, &off, &row->credit_lim_cents) &&
         GetI64(v, &off, &row->discount_bp) &&
         GetI64(v, &off, &row->balance_cents) &&
         GetI64(v, &off, &row->ytd_payment_cents) &&
         GetBig32(v, &off, &row->payment_cnt) &&
         GetBig32(v, &off, &row->delivery_cnt);
}

std::string ItemRow::Encode() const {
  std::string v;
  PutLengthPrefixed(&v, name);
  PutI64(&v, price_cents);
  PutLengthPrefixed(&v, data);
  return v;
}

bool ItemRow::Decode(Slice v, ItemRow* row) {
  size_t off = 0;
  return GetLengthPrefixed(v, &off, &row->name) &&
         GetI64(v, &off, &row->price_cents) &&
         GetLengthPrefixed(v, &off, &row->data);
}

std::string StockRow::Encode() const {
  std::string v;
  PutI64(&v, quantity);
  PutI64(&v, ytd);
  PutBig32(&v, order_cnt);
  PutBig32(&v, remote_cnt);
  PutLengthPrefixed(&v, data);
  return v;
}

bool StockRow::Decode(Slice v, StockRow* row) {
  size_t off = 0;
  int64_t q = 0;
  if (!GetI64(v, &off, &q)) return false;
  row->quantity = static_cast<int32_t>(q);
  return GetI64(v, &off, &row->ytd) && GetBig32(v, &off, &row->order_cnt) &&
         GetBig32(v, &off, &row->remote_cnt) &&
         GetLengthPrefixed(v, &off, &row->data);
}

std::string OrderRow::Encode() const {
  std::string v;
  PutBig32(&v, c_id);
  PutBig32(&v, carrier_id);
  PutBig32(&v, ol_cnt);
  PutBig64(&v, entry_d);
  return v;
}

bool OrderRow::Decode(Slice v, OrderRow* row) {
  size_t off = 0;
  return GetBig32(v, &off, &row->c_id) && GetBig32(v, &off, &row->carrier_id) &&
         GetBig32(v, &off, &row->ol_cnt) && GetBig64(v, &off, &row->entry_d);
}

std::string OrderLineRow::Encode() const {
  std::string v;
  PutBig32(&v, i_id);
  PutBig32(&v, supply_w_id);
  PutI64(&v, quantity);
  PutI64(&v, amount_cents);
  PutBig64(&v, delivery_d);
  return v;
}

bool OrderLineRow::Decode(Slice v, OrderLineRow* row) {
  size_t off = 0;
  int64_t q = 0;
  if (!GetBig32(v, &off, &row->i_id) ||
      !GetBig32(v, &off, &row->supply_w_id) || !GetI64(v, &off, &q)) {
    return false;
  }
  row->quantity = static_cast<int32_t>(q);
  return GetI64(v, &off, &row->amount_cents) &&
         GetBig64(v, &off, &row->delivery_d);
}

std::string LastName(uint32_t num) {
  static const char* kSyllables[] = {"BAR",   "OUGHT", "ABLE", "PRI",
                                     "PRES",  "ESE",   "ANTI", "CALLY",
                                     "ATION", "EING"};
  std::string name;
  name += kSyllables[(num / 100) % 10];
  name += kSyllables[(num / 10) % 10];
  name += kSyllables[num % 10];
  return name;
}

}  // namespace ssidb::workloads::tpcc
