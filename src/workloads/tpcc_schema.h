// TPC-C++ schema (paper §5.3, TPC-C spec §1.3): nine base tables plus two
// secondary indexes, hand-compiled onto the key/value engine the same way
// the thesis compiled SmallBank onto Berkeley DB (§5.1).
//
// Keys are big-endian composites so byte order == tuple order, which the
// next-key/gap locking protocol relies on (§2.5.2). Values are flat field
// encodings (fixed-point cents for money, basis points for rates).
//
// Table            Key                              Value
// warehouse        (w_id)                           WarehouseRow
// district         (w_id, d_id)                     DistrictRow
// customer         (w_id, d_id, c_id)               CustomerRow
// customer_credit  (w_id, d_id, c_id)               Credit byte
// customer_name    (w_id, d_id, c_last, c_id)       c_id        [index]
// item             (i_id)                           ItemRow
// stock            (w_id, i_id)                     StockRow
// order            (w_id, d_id, o_id)               OrderRow
// order_customer   (w_id, d_id, c_id, o_id)         empty       [index]
// new_order        (w_id, d_id, o_id)               empty
// order_line       (w_id, d_id, o_id, ol_number)    OrderLineRow
//
// The History table is omitted per §5.3.1 ("little bearing on concurrency
// control"), and w_tax is cached client-side per the same section.
//
// C_CREDIT lives in its own partition (customer_credit): §5.3.3 notes that
// with whole-row locking the Credit Check / Payment conflict degenerates to
// write-write and first-committer-wins hides the anomaly, and the TPC-C
// spec explicitly permits partitioning the Customer table — "If c_balance
// and c_credit were stored in different partitions, the conflicts would be
// as shown even in a DBMS with row-level locking and versioning".

#ifndef SSIDB_WORKLOADS_TPCC_SCHEMA_H_
#define SSIDB_WORKLOADS_TPCC_SCHEMA_H_

#include <cstdint>
#include <string>

#include "src/common/slice.h"
#include "src/common/status.h"

namespace ssidb::workloads::tpcc {

// ---------------------------------------------------------------------------
// Key encoders. All components big-endian; string components are
// length-prefix-free but '\0'-terminated (TPC-C last names are alphabetic
// syllable concatenations, so the terminator cannot collide).
// ---------------------------------------------------------------------------

std::string WarehouseKey(uint32_t w);
std::string DistrictKey(uint32_t w, uint32_t d);
std::string CustomerKey(uint32_t w, uint32_t d, uint32_t c);
std::string CustomerNameKey(uint32_t w, uint32_t d, Slice last, uint32_t c);
/// Prefix of all CustomerNameKey entries for one (w, d, last): scan
/// [prefix, prefix + 0xff] to enumerate customers sharing a last name.
std::string CustomerNamePrefix(uint32_t w, uint32_t d, Slice last);
std::string ItemKey(uint32_t i);
std::string StockKey(uint32_t w, uint32_t i);
std::string OrderKey(uint32_t w, uint32_t d, uint32_t o);
std::string OrderCustomerKey(uint32_t w, uint32_t d, uint32_t c, uint32_t o);
std::string NewOrderKey(uint32_t w, uint32_t d, uint32_t o);
std::string OrderLineKey(uint32_t w, uint32_t d, uint32_t o, uint32_t ol);

/// Decode the trailing order id of an OrderKey / NewOrderKey /
/// OrderCustomerKey (the only component readers recover from keys).
uint32_t OrderIdFromKey(Slice key);

// ---------------------------------------------------------------------------
// Row payloads.
// ---------------------------------------------------------------------------

struct WarehouseRow {
  std::string name;
  int64_t tax_bp = 0;     ///< Sales tax in basis points (0..2000).
  int64_t ytd_cents = 0;  ///< Year-to-date payments (the §5.3.1 hot field).

  std::string Encode() const;
  static bool Decode(Slice v, WarehouseRow* row);
};

struct DistrictRow {
  std::string name;
  int64_t tax_bp = 0;
  int64_t ytd_cents = 0;
  uint32_t next_o_id = 1;  ///< D_NEXT_O_ID, incremented by every New Order.

  std::string Encode() const;
  static bool Decode(Slice v, DistrictRow* row);
};

/// C_CREDIT: the field the Credit Check transaction writes and New Order
/// reads — the §5.3.3 rw-edge that makes TPC-C++ non-serializable at SI.
/// Stored in the customer_credit partition, not in CustomerRow.
enum class Credit : uint8_t { kGood = 0, kBad = 1 };

/// One-byte encoding for the customer_credit partition.
std::string EncodeCredit(Credit credit);
bool DecodeCredit(Slice v, Credit* credit);

struct CustomerRow {
  std::string first;
  std::string last;
  int64_t credit_lim_cents = 0;
  int64_t discount_bp = 0;
  int64_t balance_cents = 0;      ///< C_BALANCE (delivered, unpaid orders).
  int64_t ytd_payment_cents = 0;
  uint32_t payment_cnt = 0;
  uint32_t delivery_cnt = 0;

  std::string Encode() const;
  static bool Decode(Slice v, CustomerRow* row);
};

struct ItemRow {
  std::string name;
  int64_t price_cents = 0;
  std::string data;

  std::string Encode() const;
  static bool Decode(Slice v, ItemRow* row);
};

struct StockRow {
  int32_t quantity = 0;
  int64_t ytd = 0;
  uint32_t order_cnt = 0;
  uint32_t remote_cnt = 0;
  std::string data;

  std::string Encode() const;
  static bool Decode(Slice v, StockRow* row);
};

struct OrderRow {
  uint32_t c_id = 0;
  uint32_t carrier_id = 0;  ///< 0 == not yet delivered.
  uint32_t ol_cnt = 0;
  uint64_t entry_d = 0;     ///< Synthetic timestamp.

  std::string Encode() const;
  static bool Decode(Slice v, OrderRow* row);
};

struct OrderLineRow {
  uint32_t i_id = 0;
  uint32_t supply_w_id = 0;
  int32_t quantity = 0;
  int64_t amount_cents = 0;
  uint64_t delivery_d = 0;  ///< 0 == not yet delivered.

  std::string Encode() const;
  static bool Decode(Slice v, OrderLineRow* row);
};

// ---------------------------------------------------------------------------
// Spec-mandated generators.
// ---------------------------------------------------------------------------

/// TPC-C last name: concatenation of three syllables indexed by the digits
/// of `num` in base 10 (spec clause 4.3.2.3). num in [0, 999].
std::string LastName(uint32_t num);

constexpr uint32_t kDistrictsPerWarehouse = 10;
constexpr int64_t kInitialCreditLimCents = 50000 * 100;  ///< C_CREDIT_LIM.
constexpr int64_t kInitialBalanceCents = -10 * 100;      ///< C_BALANCE.
constexpr uint32_t kOrderStatusOrders = 20;  ///< SLEV looks at last 20.

}  // namespace ssidb::workloads::tpcc

#endif  // SSIDB_WORKLOADS_TPCC_SCHEMA_H_
