// The six TPC-C++ transaction programs (§2.8.1 for the five TPC-C ones,
// §5.3.2 / Fig 5.1 for the new Credit Check), hand-compiled to engine calls.
//
// Each program takes explicit inputs (so tests can force interleavings) and
// runs one complete database transaction: begin, body, commit — or abort
// with the failing status. Statuses with IsAbort() are engine-initiated
// aborts (deadlock / FCW / unsafe); kNotFound from the 1% unused item id in
// New Order is the spec-mandated intentional rollback and is counted
// separately by the driver.

#ifndef SSIDB_WORKLOADS_TPCC_TXNS_H_
#define SSIDB_WORKLOADS_TPCC_TXNS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/workloads/tpcc_loader.h"
#include "src/workloads/tpcc_schema.h"

namespace ssidb::workloads::tpcc {

/// Shared handle the programs operate on.
struct TpccContext {
  DB* db = nullptr;
  const TpccTables* tables = nullptr;
  TpccConfig config;
};

/// How a Payment / Order Status selects the customer (spec 2.5.1.2: 60% by
/// last name, 40% by id).
struct CustomerSelector {
  uint32_t w = 1;
  uint32_t d = 1;
  bool by_name = false;
  uint32_t c_id = 1;       ///< Used when !by_name.
  std::string last_name;   ///< Used when by_name.
};

struct NewOrderLine {
  uint32_t i_id = 1;
  uint32_t supply_w = 1;
  int32_t quantity = 1;
};

struct NewOrderInput {
  uint32_t w = 1;
  uint32_t d = 1;
  uint32_t c = 1;
  std::vector<NewOrderLine> lines;
};

struct NewOrderOutput {
  uint32_t o_id = 0;
  int64_t total_cents = 0;
  /// The §5.3.3 anomaly surface: the credit status the order was placed
  /// under ("the status is displayed on the terminal").
  Credit customer_credit = Credit::kGood;
};

/// NEWO (§2.8.1): place an order. Reads the district (d_next_o_id) and the
/// customer (including c_credit), inserts Order/NewOrder/OrderLines and
/// updates Stock per line. An unused item id rolls the whole transaction
/// back with kNotFound (spec 2.4.1.4's 1% rollback).
Status NewOrder(const TpccContext& ctx, IsolationLevel iso,
                const NewOrderInput& in, NewOrderOutput* out);

struct PaymentInput {
  uint32_t w = 1;  ///< Warehouse collecting the payment.
  uint32_t d = 1;
  CustomerSelector customer;
  int64_t amount_cents = 100;
};

/// PAY (§2.8.1): record a payment: w_ytd += amount, d_ytd += amount (both
/// skipped under config.skip_ytd_updates, §5.3.1), customer balance -=
/// amount. The History insert is omitted per §5.3.1.
Status Payment(const TpccContext& ctx, IsolationLevel iso,
               const PaymentInput& in);

struct OrderStatusOutput {
  uint32_t o_id = 0;
  uint32_t carrier_id = 0;
  int64_t balance_cents = 0;
  std::vector<OrderLineRow> lines;
};

/// OSTAT (§2.8.1, read-only): the customer's most recent order + its lines.
Status OrderStatus(const TpccContext& ctx, IsolationLevel iso,
                   const CustomerSelector& customer, OrderStatusOutput* out);

struct DeliveryInput {
  uint32_t w = 1;
  uint32_t carrier_id = 1;
};

/// DLVY (§2.8.1): deliver the oldest undelivered order of every district of
/// warehouse `w` (skipping districts with none — the DLVY1 case of the
/// paper's SDG split). `delivered` returns how many orders were delivered.
Status Delivery(const TpccContext& ctx, IsolationLevel iso,
                const DeliveryInput& in, uint32_t* delivered);

struct StockLevelInput {
  uint32_t w = 1;
  uint32_t d = 1;
  int32_t threshold = 15;  ///< Spec: uniform in [10, 20].
};

/// SLEV (§2.8.1, read-only): count distinct items in the district's last 20
/// orders whose stock quantity is below the threshold.
Status StockLevel(const TpccContext& ctx, IsolationLevel iso,
                  const StockLevelInput& in, uint32_t* low_stock);

struct CreditCheckInput {
  uint32_t w = 1;
  uint32_t d = 1;
  uint32_t c = 1;
};

/// CCHECK (§5.3.2, Fig 5.1): recompute the customer's credit status from
/// c_balance plus the value of undelivered (NewOrder) orders and write
/// c_credit. Reading NewOrder/OrderLine (inserted by NEWO) and c_balance
/// (updated by PAY/DLVY) while writing c_credit (read by NEWO) makes this
/// and NEWO the two pivots of Fig 5.3.
Status CreditCheck(const TpccContext& ctx, IsolationLevel iso,
                   const CreditCheckInput& in, Credit* result);

/// Resolve a CustomerSelector to a customer id. By-name selection scans the
/// customer_name index and picks the median match (spec 2.5.2.2). Exposed
/// for tests.
Status ResolveCustomer(Transaction* txn, const TpccTables& tables,
                       const CustomerSelector& sel, uint32_t* c_id);

}  // namespace ssidb::workloads::tpcc

#endif  // SSIDB_WORKLOADS_TPCC_TXNS_H_
