#include "src/workloads/tpcc_loader.h"

#include <algorithm>
#include <numeric>

#include "src/common/encoding.h"

namespace ssidb::workloads::tpcc {

namespace {

/// Commit the running transaction every kBatch inserts so the load never
/// builds giant write sets (the engine is in-memory, but lock tables are
/// real). Returns a fresh transaction.
constexpr size_t kBatch = 2000;

class BatchLoader {
 public:
  explicit BatchLoader(DB* db) : db_(db) { Renew(); }

  Status Insert(TableId table, Slice key, Slice value) {
    Status st = txn_->Insert(table, key, value);
    if (!st.ok()) return st;
    if (++pending_ >= kBatch) return Flush();
    return Status::OK();
  }

  Status Flush() {
    Status st = txn_->Commit();
    Renew();
    return st;
  }

 private:
  void Renew() {
    txn_ = db_->Begin({IsolationLevel::kSnapshot});
    pending_ = 0;
  }

  DB* db_;
  std::unique_ptr<Transaction> txn_;
  size_t pending_ = 0;
};

}  // namespace

Status LoadTpcc(DB* db, const TpccConfig& config, uint64_t seed,
                TpccTables* t) {
  if (config.warehouses == 0) {
    return Status::InvalidArgument("need at least one warehouse");
  }
  Status st = db->CreateTable("warehouse", &t->warehouse);
  if (st.ok()) st = db->CreateTable("district", &t->district);
  if (st.ok()) st = db->CreateTable("customer", &t->customer);
  if (st.ok()) st = db->CreateTable("customer_credit", &t->customer_credit);
  if (st.ok()) st = db->CreateTable("customer_name", &t->customer_name);
  if (st.ok()) st = db->CreateTable("item", &t->item);
  if (st.ok()) st = db->CreateTable("stock", &t->stock);
  if (st.ok()) st = db->CreateTable("order", &t->order);
  if (st.ok()) st = db->CreateTable("order_customer", &t->order_customer);
  if (st.ok()) st = db->CreateTable("new_order", &t->new_order);
  if (st.ok()) st = db->CreateTable("order_line", &t->order_line);
  if (!st.ok()) return st;

  Random rng(seed);
  BatchLoader loader(db);
  const uint32_t customers = config.customers_per_district();
  const uint32_t items = config.items();

  // Items (shared across warehouses).
  for (uint32_t i = 1; i <= items; ++i) {
    ItemRow row;
    row.name = rng.AlphaString(14, 24);
    row.price_cents = rng.UniformRange(100, 10000);
    row.data = rng.AlphaString(26, 50);
    st = loader.Insert(t->item, ItemKey(i), row.Encode());
    if (!st.ok()) return st;
  }

  t->warehouse_tax_bp.assign(config.warehouses + 1, 0);
  for (uint32_t w = 1; w <= config.warehouses; ++w) {
    WarehouseRow wrow;
    wrow.name = rng.AlphaString(6, 10);
    wrow.tax_bp = rng.UniformRange(0, 2000);
    wrow.ytd_cents = 30000000;  // $300,000 (spec 4.3.3.1).
    t->warehouse_tax_bp[w] = wrow.tax_bp;
    st = loader.Insert(t->warehouse, WarehouseKey(w), wrow.Encode());
    if (!st.ok()) return st;

    // Stock: one row per item per warehouse.
    for (uint32_t i = 1; i <= items; ++i) {
      StockRow srow;
      srow.quantity = static_cast<int32_t>(rng.UniformRange(10, 100));
      srow.data = rng.AlphaString(26, 50);
      st = loader.Insert(t->stock, StockKey(w, i), srow.Encode());
      if (!st.ok()) return st;
    }

    for (uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
      DistrictRow drow;
      drow.name = rng.AlphaString(6, 10);
      drow.tax_bp = rng.UniformRange(0, 2000);
      drow.ytd_cents = 3000000;  // $30,000.
      drow.next_o_id = config.initial_orders() + 1;
      st = loader.Insert(t->district, DistrictKey(w, d), drow.Encode());
      if (!st.ok()) return st;

      // Customers and the last-name index.
      for (uint32_t c = 1; c <= customers; ++c) {
        CustomerRow crow;
        crow.first = rng.AlphaString(8, 16);
        // Spec 4.3.3.1: the first 1000 customers get sequential last names,
        // the rest NURand names (we use modulo for tiny scales).
        crow.last = LastName(c <= 1000 ? (c - 1)
                                       : static_cast<uint32_t>(
                                             rng.NURand(255, 0, 999)));
        crow.credit_lim_cents = kInitialCreditLimCents;
        crow.discount_bp = rng.UniformRange(0, 5000);
        crow.balance_cents = kInitialBalanceCents;
        crow.ytd_payment_cents = 10 * 100;
        crow.payment_cnt = 1;
        st = loader.Insert(t->customer, CustomerKey(w, d, c), crow.Encode());
        if (st.ok()) {
          // Spec 4.3.3.1: 10% of customers start with bad credit.
          st = loader.Insert(
              t->customer_credit, CustomerKey(w, d, c),
              EncodeCredit(rng.Bernoulli(0.10) ? Credit::kBad
                                               : Credit::kGood));
        }
        if (st.ok()) {
          std::string id_value;
          PutBig32(&id_value, c);
          st = loader.Insert(t->customer_name,
                             CustomerNameKey(w, d, crow.last, c), id_value);
        }
        if (!st.ok()) return st;
      }

      // Initial orders: a random permutation of customers, one order each
      // (spec 4.3.3.1). The last 30% are undelivered (new_order rows).
      std::vector<uint32_t> perm(config.initial_orders());
      std::iota(perm.begin(), perm.end(), 1);
      rng.Shuffle(&perm);
      const uint32_t first_new =
          config.initial_orders() - config.initial_orders() * 3 / 10 + 1;
      for (uint32_t o = 1; o <= config.initial_orders(); ++o) {
        OrderRow orow;
        orow.c_id = perm[o - 1];
        orow.ol_cnt = static_cast<uint32_t>(rng.UniformRange(5, 15));
        orow.entry_d = o;
        orow.carrier_id =
            o < first_new ? static_cast<uint32_t>(rng.UniformRange(1, 10)) : 0;
        st = loader.Insert(t->order, OrderKey(w, d, o), orow.Encode());
        if (st.ok()) {
          st = loader.Insert(t->order_customer,
                             OrderCustomerKey(w, d, orow.c_id, o), "");
        }
        if (st.ok() && orow.carrier_id == 0) {
          st = loader.Insert(t->new_order, NewOrderKey(w, d, o), "");
        }
        if (!st.ok()) return st;

        for (uint32_t ol = 1; ol <= orow.ol_cnt; ++ol) {
          OrderLineRow lrow;
          lrow.i_id = static_cast<uint32_t>(rng.UniformRange(1, items));
          lrow.supply_w_id = w;
          lrow.quantity = 5;
          lrow.amount_cents =
              orow.carrier_id == 0 ? rng.UniformRange(1, 999999) : 0;
          lrow.delivery_d = orow.carrier_id == 0 ? 0 : orow.entry_d;
          st = loader.Insert(t->order_line, OrderLineKey(w, d, o, ol),
                             lrow.Encode());
          if (!st.ok()) return st;
        }
      }
    }
  }
  return loader.Flush();
}

}  // namespace ssidb::workloads::tpcc
