// TPC-C++ as a benchmark workload (§5.3.4 transaction mix, §5.3.5 Stock
// Level mix): random input generation per the spec's distributions, driving
// the programs of tpcc_txns.h.

#ifndef SSIDB_WORKLOADS_TPCC_WORKLOAD_H_
#define SSIDB_WORKLOADS_TPCC_WORKLOAD_H_

#include <memory>

#include "src/benchlib/driver.h"
#include "src/workloads/tpcc_txns.h"

namespace ssidb::workloads::tpcc {

/// Program ids, exposed for tests and the mix accounting.
enum class TpccOp {
  kNewOrder,
  kPayment,
  kCreditCheck,
  kDelivery,
  kOrderStatus,
  kStockLevel,
};

class TpccWorkload : public bench::Workload {
 public:
  /// Creates and loads the database (deterministic in `seed`).
  static Status Setup(DB* db, const TpccConfig& config, uint64_t seed,
                      std::unique_ptr<TpccWorkload>* workload);

  Status RunOne(DB* db, const bench::SeriesConfig& series, uint64_t worker,
                Random* rng) override;

  /// Pick the next program per the configured mix (§5.3.4 / §5.3.5).
  TpccOp NextOp(Random* rng) const;

  /// Run one specific program with spec-random inputs.
  Status RunOp(DB* db, const bench::SeriesConfig& series, TpccOp op,
               Random* rng);

  /// Consistency oracle (spec 3.3.2.1): for every district,
  /// d_next_o_id - 1 == max order id == max order_customer id, and every
  /// order below it exists. Returns kInvalidArgument on violation.
  Status CheckConsistency(DB* db);

  const TpccContext& context() const { return ctx_; }
  const TpccConfig& config() const { return ctx_.config; }

 private:
  TpccWorkload() = default;

  NewOrderInput RandomNewOrder(Random* rng) const;
  PaymentInput RandomPayment(Random* rng) const;
  CustomerSelector RandomCustomer(Random* rng) const;

  TpccTables tables_;
  TpccContext ctx_;
};

}  // namespace ssidb::workloads::tpcc

#endif  // SSIDB_WORKLOADS_TPCC_WORKLOAD_H_
