#include "src/workloads/smallbank.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/encoding.h"

namespace ssidb::workloads {

namespace {

/// Balances are fixed-point cents in an 8-byte little-endian value.
std::string EncodeBalance(int64_t cents) {
  std::string v;
  PutI64(&v, cents);
  return v;
}

bool DecodeBalance(Slice v, int64_t* cents) {
  size_t off = 0;
  return GetI64(v, &off, cents);
}

Status GetBalance(Transaction* txn, TableId table, uint64_t id,
                  int64_t* cents) {
  std::string v;
  Status st = txn->Get(table, EncodeU64Key(id), &v);
  if (!st.ok()) return st;
  if (!DecodeBalance(v, cents)) {
    return Status::InvalidArgument("corrupt balance value");
  }
  return Status::OK();
}

Status PutBalance(Transaction* txn, TableId table, uint64_t id,
                  int64_t cents) {
  return txn->Put(table, EncodeU64Key(id), EncodeBalance(cents));
}

constexpr int64_t kInitialBalanceCents = 100 * 100;  // $100.00 per account.
constexpr int64_t kOverdraftPenaltyCents = 100;      // The $1 penalty.

}  // namespace

std::string SmallBank::NameKey(uint64_t customer) {
  char buf[32];
  snprintf(buf, sizeof(buf), "name%012" PRIu64, customer);
  return buf;
}

Status SmallBank::Setup(DB* db, const SmallBankConfig& config,
                        std::unique_ptr<SmallBank>* workload) {
  std::unique_ptr<SmallBank> sb(new SmallBank(config));
  Status st = db->CreateTable("account", &sb->account_);
  if (st.ok()) st = db->CreateTable("saving", &sb->saving_);
  if (st.ok()) st = db->CreateTable("checking", &sb->checking_);
  if (st.ok()) st = db->CreateTable("conflict", &sb->conflict_);
  if (!st.ok()) return st;

  // Bulk-load in batches at snapshot isolation; no concurrency yet.
  constexpr uint64_t kBatch = 1024;
  for (uint64_t base = 0; base < config.customers; base += kBatch) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    const uint64_t end = std::min(base + kBatch, config.customers);
    for (uint64_t c = base; c < end; ++c) {
      st = txn->Insert(sb->account_, NameKey(c), EncodeU64Key(c));
      if (st.ok()) {
        st = txn->Insert(sb->saving_, EncodeU64Key(c),
                         EncodeBalance(kInitialBalanceCents));
      }
      if (st.ok()) {
        st = txn->Insert(sb->checking_, EncodeU64Key(c),
                         EncodeBalance(kInitialBalanceCents));
      }
      if (st.ok() && (config.fix == SmallBankFix::kMaterializeWT ||
                      config.fix == SmallBankFix::kMaterializeBW)) {
        st = txn->Insert(sb->conflict_, EncodeU64Key(c), EncodeBalance(0));
      }
      if (!st.ok()) return st;
    }
    st = txn->Commit();
    if (!st.ok()) return st;
  }
  *workload = std::move(sb);
  return Status::OK();
}

Status SmallBank::LookupCustomer(Transaction* txn, Slice name, uint64_t* id) {
  std::string v;
  Status st = txn->Get(account_, name, &v);
  if (!st.ok()) return st;
  *id = DecodeU64Key(v);
  return Status::OK();
}

Status SmallBank::MaterializeConflict(Transaction* txn, uint64_t id) {
  // §2.6.1: UPDATE Conflict SET val = val + 1 WHERE id = :x — a ww-conflict
  // precisely when the two programs share the customer parameter.
  int64_t val = 0;
  Status st = GetBalance(txn, conflict_, id, &val);
  if (!st.ok()) return st;
  return PutBalance(txn, conflict_, id, val + 1);
}

Status SmallBank::Balance(Transaction* txn, uint64_t id, int64_t* total) {
  int64_t s = 0;
  int64_t c = 0;
  Status st = GetBalance(txn, saving_, id, &s);
  if (st.ok()) st = GetBalance(txn, checking_, id, &c);
  if (!st.ok()) return st;
  if (config_.fix == SmallBankFix::kPromoteBW) {
    // §2.8.5 PromoteBW: identity write of the Checking row the query read.
    st = PutBalance(txn, checking_, id, c);
    if (!st.ok()) return st;
  }
  if (config_.fix == SmallBankFix::kMaterializeBW) {
    st = MaterializeConflict(txn, id);
    if (!st.ok()) return st;
  }
  if (total != nullptr) *total = s + c;
  return Status::OK();
}

Status SmallBank::DepositChecking(Transaction* txn, uint64_t id, int64_t v) {
  if (v < 0) return Status::InvalidArgument("negative deposit");
  int64_t c = 0;
  Status st = GetBalance(txn, checking_, id, &c);
  if (!st.ok()) return st;
  return PutBalance(txn, checking_, id, c + v);
}

Status SmallBank::TransactSaving(Transaction* txn, uint64_t id, int64_t v) {
  int64_t s = 0;
  Status st = GetBalance(txn, saving_, id, &s);
  if (!st.ok()) return st;
  if (s + v < 0) {
    return Status::InvalidArgument("would overdraw savings");
  }
  return PutBalance(txn, saving_, id, s + v);
}

Status SmallBank::Amalgamate(Transaction* txn, uint64_t id1, uint64_t id2) {
  int64_t s1 = 0;
  int64_t c1 = 0;
  int64_t c2 = 0;
  Status st = GetBalance(txn, saving_, id1, &s1);
  if (st.ok()) st = GetBalance(txn, checking_, id1, &c1);
  if (st.ok()) st = GetBalance(txn, checking_, id2, &c2);
  if (st.ok()) st = PutBalance(txn, checking_, id2, c2 + s1 + c1);
  if (st.ok()) st = PutBalance(txn, saving_, id1, 0);
  if (st.ok()) st = PutBalance(txn, checking_, id1, 0);
  return st;
}

Status SmallBank::WriteCheck(Transaction* txn, uint64_t id, int64_t v) {
  int64_t s = 0;
  int64_t c = 0;
  Status st;
  if (config_.fix == SmallBankFix::kPromoteWTSelectForUpdate) {
    // §2.6.2 promotion via locking read: the Saving read is an update for
    // concurrency-control purposes, closing the WT vulnerable edge.
    std::string raw;
    st = txn->GetForUpdate(saving_, EncodeU64Key(id), &raw);
    if (st.ok() && !DecodeBalance(raw, &s)) {
      st = Status::InvalidArgument("corrupt balance value");
    }
  } else {
    st = GetBalance(txn, saving_, id, &s);
  }
  if (st.ok()) st = GetBalance(txn, checking_, id, &c);
  if (!st.ok()) return st;
  if (config_.fix == SmallBankFix::kPromoteWT) {
    // Identity write of the Saving row (promotion of the WT edge).
    st = PutBalance(txn, saving_, id, s);
    if (!st.ok()) return st;
  }
  if (config_.fix == SmallBankFix::kMaterializeWT) {
    st = MaterializeConflict(txn, id);
    if (!st.ok()) return st;
  }
  const int64_t debit =
      (s + c < v) ? v + kOverdraftPenaltyCents : v;  // Overdraft penalty.
  return PutBalance(txn, checking_, id, c - debit);
}

Status SmallBank::RunOp(DB* db, const bench::SeriesConfig& series,
                        SmallBankOp op, uint64_t n1, uint64_t n2,
                        int64_t amount_cents) {
  const bool read_only = op == SmallBankOp::kBalance &&
                         config_.fix != SmallBankFix::kPromoteBW &&
                         config_.fix != SmallBankFix::kMaterializeBW;
  auto txn = db->Begin({series.For(read_only)});
  uint64_t id1 = 0;
  uint64_t id2 = 0;
  Status st = LookupCustomer(txn.get(), NameKey(n1), &id1);
  if (st.ok() && op == SmallBankOp::kAmalgamate) {
    st = LookupCustomer(txn.get(), NameKey(n2), &id2);
  }
  if (st.ok()) {
    switch (op) {
      case SmallBankOp::kBalance:
        st = Balance(txn.get(), id1, nullptr);
        break;
      case SmallBankOp::kDepositChecking:
        st = DepositChecking(txn.get(), id1, amount_cents);
        break;
      case SmallBankOp::kTransactSaving:
        st = TransactSaving(txn.get(), id1, amount_cents);
        break;
      case SmallBankOp::kAmalgamate:
        st = Amalgamate(txn.get(), id1, id2);
        break;
      case SmallBankOp::kWriteCheck:
        st = WriteCheck(txn.get(), id1, amount_cents);
        break;
    }
  }
  if (!st.ok()) {
    if (txn->active()) txn->Abort();
    return st;
  }
  return txn->Commit();
}

Status SmallBank::RunOne(DB* db, const bench::SeriesConfig& series,
                         uint64_t worker, Random* rng) {
  (void)worker;
  // §6.1: N SmallBank operations per database transaction (N=1 for the
  // short workloads, N=10 for the complex ones), each chosen uniformly
  // among the five programs.
  const bool multi = config_.ops_per_txn > 1;
  if (!multi) {
    const auto op = static_cast<SmallBankOp>(rng->Uniform(5));
    const uint64_t n1 = rng->Uniform(config_.customers);
    uint64_t n2 = rng->Uniform(config_.customers);
    if (n2 == n1) n2 = (n2 + 1) % config_.customers;
    return RunOp(db, series, op, n1, n2,
                 rng->UniformRange(1, 50) * 100);
  }

  // Multi-op transactions share one database transaction.
  auto txn = db->Begin({series.For(false)});
  for (int i = 0; i < config_.ops_per_txn; ++i) {
    const auto op = static_cast<SmallBankOp>(rng->Uniform(5));
    const uint64_t n1 = rng->Uniform(config_.customers);
    uint64_t n2 = rng->Uniform(config_.customers);
    if (n2 == n1) n2 = (n2 + 1) % config_.customers;
    const int64_t amount = rng->UniformRange(1, 50) * 100;
    uint64_t id1 = 0;
    uint64_t id2 = 0;
    Status st = LookupCustomer(txn.get(), NameKey(n1), &id1);
    if (st.ok() && op == SmallBankOp::kAmalgamate) {
      st = LookupCustomer(txn.get(), NameKey(n2), &id2);
    }
    if (st.ok()) {
      switch (op) {
        case SmallBankOp::kBalance:
          st = Balance(txn.get(), id1, nullptr);
          break;
        case SmallBankOp::kDepositChecking:
          st = DepositChecking(txn.get(), id1, amount);
          break;
        case SmallBankOp::kTransactSaving:
          st = TransactSaving(txn.get(), id1, amount);
          break;
        case SmallBankOp::kAmalgamate:
          st = Amalgamate(txn.get(), id1, id2);
          break;
        case SmallBankOp::kWriteCheck:
          st = WriteCheck(txn.get(), id1, amount);
          break;
      }
    }
    if (st.IsInvalidArgument()) continue;  // Overdraw guard: skip the op.
    if (!st.ok()) {
      if (txn->active()) txn->Abort();
      return st;
    }
  }
  return txn->Commit();
}

Status SmallBank::TotalBalance(DB* db, int64_t* cents) {
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  int64_t total = 0;
  for (TableId t : {saving_, checking_}) {
    Status st = txn->Scan(
        t, EncodeU64Key(0), EncodeU64Key(UINT64_MAX),
        [&total](Slice, Slice v) {
          int64_t c = 0;
          if (DecodeBalance(v, &c)) total += c;
          return true;
        });
    if (!st.ok()) {
      txn->Abort();
      return st;
    }
  }
  Status st = txn->Commit();
  if (st.ok() && cents != nullptr) *cents = total;
  return st;
}

}  // namespace ssidb::workloads
