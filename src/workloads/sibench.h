// sibench (paper §5.2): the thesis' microbenchmark isolating the cost of
// read-write conflict handling. One table of I rows (id -> value). The
// query scans every row and returns the id with the smallest value (forcing
// a full predicate read with CPU work but constant output); the update
// increments the value of one uniformly random row.
//
// The single rw-edge between the two programs means no deadlock and no
// write skew is possible, so every difference between S2PL / SI / SSI in
// Figures 6.6-6.11 is pure concurrency-control mechanism cost: blocking of
// readers by writers (S2PL) versus SIREAD lock maintenance (SSI) versus
// nothing (SI).

#ifndef SSIDB_WORKLOADS_SIBENCH_H_
#define SSIDB_WORKLOADS_SIBENCH_H_

#include <cstdint>
#include <memory>

#include "src/benchlib/driver.h"
#include "src/db/db.h"

namespace ssidb::workloads {

struct SiBenchConfig {
  /// I, the number of rows. The paper sweeps 10 / 100 / 1000: small I gives
  /// high write-write contention, large I gives long scans (lock-manager
  /// pressure under S2PL/SSI).
  uint64_t items = 100;
  /// Ratio of query transactions to update transactions. 1 reproduces the
  /// mixed workload (Figs 6.6-6.8), 10 the query-mostly one (Figs 6.9-6.11).
  uint32_t queries_per_update = 1;
};

class SiBench : public bench::Workload {
 public:
  /// Creates the sitest table and loads `config.items` rows with value 0.
  static Status Setup(DB* db, const SiBenchConfig& config,
                      std::unique_ptr<SiBench>* workload);

  Status RunOne(DB* db, const bench::SeriesConfig& series, uint64_t worker,
                Random* rng) override;

  /// Pipelined attempt: the update program submits through
  /// Session::CommitAsync — certify + WAL-append on the worker thread,
  /// fsync acknowledgment via the completion pipeline — so one worker
  /// keeps pipeline_depth increments in flight and the durable regime's
  /// group commit batches across them. The query program stays blocking
  /// (a read-only commit never waits on the log; pipelining it buys
  /// nothing).
  void SubmitOne(DB* db, Session* session, const bench::SeriesConfig& series,
                 uint64_t worker, Random* rng,
                 std::function<void(Status)> done) override;

  /// The query program: scan all rows, return the id of the minimum value.
  /// (SELECT id FROM sitest ORDER BY value ASC LIMIT 1.)
  Status MinValueQuery(DB* db, const bench::SeriesConfig& series,
                       uint64_t* min_id);

  /// The update program: value = value + 1 for row `id`.
  Status IncrementValue(DB* db, const bench::SeriesConfig& series,
                        uint64_t id);

  /// Oracle: the sum of all values equals the number of committed updates.
  Status SumValues(DB* db, int64_t* sum);

  const SiBenchConfig& config() const { return config_; }
  TableId table() const { return table_; }

 private:
  explicit SiBench(const SiBenchConfig& config) : config_(config) {}

  SiBenchConfig config_;
  TableId table_ = 0;
};

}  // namespace ssidb::workloads

#endif  // SSIDB_WORKLOADS_SIBENCH_H_
