#include "src/workloads/tpcc_txns.h"

#include <set>

#include "src/common/encoding.h"

namespace ssidb::workloads::tpcc {

namespace {

/// Abort `txn` (if still active) and surface `st` as the program outcome.
Status Fail(Transaction* txn, const Status& st) {
  if (txn->active()) txn->Abort();
  return st;
}

Status GetCustomer(Transaction* txn, const TpccTables& t, uint32_t w,
                   uint32_t d, uint32_t c, CustomerRow* row) {
  std::string v;
  Status st = txn->Get(t.customer, CustomerKey(w, d, c), &v);
  if (!st.ok()) return st;
  if (!CustomerRow::Decode(v, row)) {
    return Status::InvalidArgument("corrupt customer row");
  }
  return Status::OK();
}

Status PutCustomer(Transaction* txn, const TpccTables& t, uint32_t w,
                   uint32_t d, uint32_t c, const CustomerRow& row) {
  return txn->Put(t.customer, CustomerKey(w, d, c), row.Encode());
}

Status GetDistrict(Transaction* txn, const TpccTables& t, uint32_t w,
                   uint32_t d, DistrictRow* row) {
  std::string v;
  Status st = txn->Get(t.district, DistrictKey(w, d), &v);
  if (!st.ok()) return st;
  if (!DistrictRow::Decode(v, row)) {
    return Status::InvalidArgument("corrupt district row");
  }
  return Status::OK();
}

/// The upper bound key for prefix scans: prefix + 0xff... sorts after every
/// extension of the prefix that the workload generates.
std::string PrefixEnd(std::string prefix) {
  prefix.append(8, '\xff');
  return prefix;
}

}  // namespace

Status ResolveCustomer(Transaction* txn, const TpccTables& tables,
                       const CustomerSelector& sel, uint32_t* c_id) {
  if (!sel.by_name) {
    *c_id = sel.c_id;
    return Status::OK();
  }
  // Spec 2.5.2.2: collect all customers with the last name, sorted by
  // first name, and pick position ceil(n/2). Our index is sorted by c_id
  // rather than first name; the median-by-position rule is preserved,
  // which is all the conflict structure depends on.
  std::vector<uint32_t> ids;
  const std::string prefix =
      CustomerNamePrefix(sel.w, sel.d, sel.last_name);
  Status st = txn->Scan(tables.customer_name, prefix, PrefixEnd(prefix),
                        [&ids](Slice, Slice value) {
                          size_t off = 0;
                          uint32_t c = 0;
                          if (GetBig32(value, &off, &c)) ids.push_back(c);
                          return true;
                        });
  if (!st.ok()) return st;
  if (ids.empty()) return Status::NotFound("no customer with last name");
  *c_id = ids[(ids.size() + 1) / 2 - 1];
  return Status::OK();
}

Status NewOrder(const TpccContext& ctx, IsolationLevel iso,
                const NewOrderInput& in, NewOrderOutput* out) {
  const TpccTables& t = *ctx.tables;
  auto txn = ctx.db->Begin({iso});

  // District: take the order number and bump D_NEXT_O_ID.
  DistrictRow district;
  Status st = GetDistrict(txn.get(), t, in.w, in.d, &district);
  if (!st.ok()) return Fail(txn.get(), st);
  const uint32_t o_id = district.next_o_id;
  district.next_o_id++;
  st = txn->Put(t.district, DistrictKey(in.w, in.d), district.Encode());
  if (!st.ok()) return Fail(txn.get(), st);

  // Customer: discount, last name, and — the §5.3.3 edge — c_credit from
  // its partition (written by Credit Check, displayed on the terminal).
  CustomerRow customer;
  st = GetCustomer(txn.get(), t, in.w, in.d, in.c, &customer);
  if (!st.ok()) return Fail(txn.get(), st);
  std::string credit_v;
  st = txn->Get(t.customer_credit, CustomerKey(in.w, in.d, in.c), &credit_v);
  if (!st.ok()) return Fail(txn.get(), st);
  Credit credit = Credit::kGood;
  if (!DecodeCredit(credit_v, &credit)) {
    return Fail(txn.get(), Status::InvalidArgument("corrupt credit row"));
  }

  // Validate every item id up front: spec 2.4.1.4 rolls the transaction
  // back on an unused id, modelling user data-entry errors.
  std::vector<ItemRow> items(in.lines.size());
  for (size_t i = 0; i < in.lines.size(); ++i) {
    std::string v;
    st = txn->Get(t.item, ItemKey(in.lines[i].i_id), &v);
    if (st.IsNotFound()) {
      return Fail(txn.get(), Status::NotFound("unused item id"));
    }
    if (!st.ok()) return Fail(txn.get(), st);
    if (!ItemRow::Decode(v, &items[i])) {
      return Fail(txn.get(), Status::InvalidArgument("corrupt item row"));
    }
  }

  OrderRow order;
  order.c_id = in.c;
  order.carrier_id = 0;
  order.ol_cnt = static_cast<uint32_t>(in.lines.size());
  order.entry_d = o_id;
  st = txn->Insert(t.order, OrderKey(in.w, in.d, o_id), order.Encode());
  if (st.ok()) {
    st = txn->Insert(t.order_customer,
                     OrderCustomerKey(in.w, in.d, in.c, o_id), "");
  }
  if (st.ok()) {
    st = txn->Insert(t.new_order, NewOrderKey(in.w, in.d, o_id), "");
  }
  if (!st.ok()) return Fail(txn.get(), st);

  int64_t total = 0;
  for (size_t i = 0; i < in.lines.size(); ++i) {
    const NewOrderLine& line = in.lines[i];
    std::string v;
    st = txn->Get(t.stock, StockKey(line.supply_w, line.i_id), &v);
    if (!st.ok()) return Fail(txn.get(), st);
    StockRow stock;
    if (!StockRow::Decode(v, &stock)) {
      return Fail(txn.get(), Status::InvalidArgument("corrupt stock row"));
    }
    // Spec 2.4.2.2: restock when the level would drop below 10.
    if (stock.quantity - line.quantity >= 10) {
      stock.quantity -= line.quantity;
    } else {
      stock.quantity = stock.quantity - line.quantity + 91;
    }
    stock.ytd += line.quantity;
    stock.order_cnt++;
    if (line.supply_w != in.w) stock.remote_cnt++;
    st = txn->Put(t.stock, StockKey(line.supply_w, line.i_id),
                  stock.Encode());
    if (!st.ok()) return Fail(txn.get(), st);

    OrderLineRow ol;
    ol.i_id = line.i_id;
    ol.supply_w_id = line.supply_w;
    ol.quantity = line.quantity;
    ol.amount_cents = line.quantity * items[i].price_cents;
    ol.delivery_d = 0;
    total += ol.amount_cents;
    st = txn->Insert(t.order_line,
                     OrderLineKey(in.w, in.d, o_id,
                                  static_cast<uint32_t>(i + 1)),
                     ol.Encode());
    if (!st.ok()) return Fail(txn.get(), st);
  }

  // Total with warehouse tax (cached, §5.3.1), district tax and discount —
  // computed the way the terminal would display it.
  const int64_t w_tax = ctx.tables->warehouse_tax_bp[in.w];
  total = total * (10000 - customer.discount_bp) / 10000;
  total = total * (10000 + w_tax + district.tax_bp) / 10000;

  st = txn->Commit();
  if (st.ok() && out != nullptr) {
    out->o_id = o_id;
    out->total_cents = total;
    out->customer_credit = credit;
  }
  return st;
}

Status Payment(const TpccContext& ctx, IsolationLevel iso,
               const PaymentInput& in) {
  const TpccTables& t = *ctx.tables;
  auto txn = ctx.db->Begin({iso});

  if (!ctx.config.skip_ytd_updates) {
    // The §5.3.1 hotspot: every Payment for the warehouse updates w_ytd.
    std::string v;
    Status st = txn->Get(t.warehouse, WarehouseKey(in.w), &v);
    if (!st.ok()) return Fail(txn.get(), st);
    WarehouseRow warehouse;
    if (!WarehouseRow::Decode(v, &warehouse)) {
      return Fail(txn.get(), Status::InvalidArgument("corrupt warehouse"));
    }
    warehouse.ytd_cents += in.amount_cents;
    st = txn->Put(t.warehouse, WarehouseKey(in.w), warehouse.Encode());
    if (!st.ok()) return Fail(txn.get(), st);

    DistrictRow district;
    st = GetDistrict(txn.get(), t, in.w, in.d, &district);
    if (!st.ok()) return Fail(txn.get(), st);
    district.ytd_cents += in.amount_cents;
    st = txn->Put(t.district, DistrictKey(in.w, in.d), district.Encode());
    if (!st.ok()) return Fail(txn.get(), st);
  }

  uint32_t c_id = 0;
  Status st = ResolveCustomer(txn.get(), t, in.customer, &c_id);
  if (!st.ok()) return Fail(txn.get(), st);

  CustomerRow customer;
  st = GetCustomer(txn.get(), t, in.customer.w, in.customer.d, c_id,
                   &customer);
  if (!st.ok()) return Fail(txn.get(), st);
  customer.balance_cents -= in.amount_cents;
  customer.ytd_payment_cents += in.amount_cents;
  customer.payment_cnt++;
  st = PutCustomer(txn.get(), t, in.customer.w, in.customer.d, c_id,
                   customer);
  if (!st.ok()) return Fail(txn.get(), st);
  return txn->Commit();
}

Status OrderStatus(const TpccContext& ctx, IsolationLevel iso,
                   const CustomerSelector& customer, OrderStatusOutput* out) {
  const TpccTables& t = *ctx.tables;
  auto txn = ctx.db->Begin({iso});

  uint32_t c_id = 0;
  Status st = ResolveCustomer(txn.get(), t, customer, &c_id);
  if (!st.ok()) return Fail(txn.get(), st);

  CustomerRow crow;
  st = GetCustomer(txn.get(), t, customer.w, customer.d, c_id, &crow);
  if (!st.ok()) return Fail(txn.get(), st);

  // Most recent order: the largest o_id in the order_customer index.
  uint32_t last_o = 0;
  const std::string lo = OrderCustomerKey(customer.w, customer.d, c_id, 0);
  const std::string hi =
      OrderCustomerKey(customer.w, customer.d, c_id, UINT32_MAX);
  st = txn->Scan(t.order_customer, lo, hi, [&last_o](Slice key, Slice) {
    last_o = OrderIdFromKey(key);
    return true;
  });
  if (!st.ok()) return Fail(txn.get(), st);
  if (last_o == 0) {
    return Fail(txn.get(), Status::NotFound("customer has no orders"));
  }

  std::string v;
  st = txn->Get(t.order, OrderKey(customer.w, customer.d, last_o), &v);
  if (!st.ok()) return Fail(txn.get(), st);
  OrderRow order;
  if (!OrderRow::Decode(v, &order)) {
    return Fail(txn.get(), Status::InvalidArgument("corrupt order row"));
  }

  std::vector<OrderLineRow> lines;
  st = txn->Scan(t.order_line,
                 OrderLineKey(customer.w, customer.d, last_o, 0),
                 OrderLineKey(customer.w, customer.d, last_o, UINT32_MAX),
                 [&lines](Slice, Slice value) {
                   OrderLineRow ol;
                   if (OrderLineRow::Decode(value, &ol)) lines.push_back(ol);
                   return true;
                 });
  if (!st.ok()) return Fail(txn.get(), st);

  st = txn->Commit();
  if (st.ok() && out != nullptr) {
    out->o_id = last_o;
    out->carrier_id = order.carrier_id;
    out->balance_cents = crow.balance_cents;
    out->lines = std::move(lines);
  }
  return st;
}

Status Delivery(const TpccContext& ctx, IsolationLevel iso,
                const DeliveryInput& in, uint32_t* delivered) {
  const TpccTables& t = *ctx.tables;
  auto txn = ctx.db->Begin({iso});
  uint32_t count = 0;

  for (uint32_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    // Oldest undelivered order: the minimum o_id in new_order for (w, d).
    uint32_t o_id = 0;
    bool found = false;
    Status st = txn->Scan(t.new_order, NewOrderKey(in.w, d, 0),
                          NewOrderKey(in.w, d, UINT32_MAX),
                          [&o_id, &found](Slice key, Slice) {
                            o_id = OrderIdFromKey(key);
                            found = true;
                            return false;  // First key only.
                          });
    if (!st.ok()) return Fail(txn.get(), st);
    if (!found) continue;  // DLVY1: nothing to deliver in this district.

    st = txn->Delete(t.new_order, NewOrderKey(in.w, d, o_id));
    if (!st.ok()) return Fail(txn.get(), st);

    std::string v;
    st = txn->Get(t.order, OrderKey(in.w, d, o_id), &v);
    if (!st.ok()) return Fail(txn.get(), st);
    OrderRow order;
    if (!OrderRow::Decode(v, &order)) {
      return Fail(txn.get(), Status::InvalidArgument("corrupt order row"));
    }
    order.carrier_id = in.carrier_id;
    st = txn->Put(t.order, OrderKey(in.w, d, o_id), order.Encode());
    if (!st.ok()) return Fail(txn.get(), st);

    int64_t order_total = 0;
    for (uint32_t ol = 1; ol <= order.ol_cnt; ++ol) {
      st = txn->Get(t.order_line, OrderLineKey(in.w, d, o_id, ol), &v);
      if (!st.ok()) return Fail(txn.get(), st);
      OrderLineRow line;
      if (!OrderLineRow::Decode(v, &line)) {
        return Fail(txn.get(), Status::InvalidArgument("corrupt order line"));
      }
      line.delivery_d = o_id;
      order_total += line.amount_cents;
      st = txn->Put(t.order_line, OrderLineKey(in.w, d, o_id, ol),
                    line.Encode());
      if (!st.ok()) return Fail(txn.get(), st);
    }

    CustomerRow customer;
    st = GetCustomer(txn.get(), t, in.w, d, order.c_id, &customer);
    if (!st.ok()) return Fail(txn.get(), st);
    customer.balance_cents += order_total;
    customer.delivery_cnt++;
    st = PutCustomer(txn.get(), t, in.w, d, order.c_id, customer);
    if (!st.ok()) return Fail(txn.get(), st);
    ++count;
  }

  Status st = txn->Commit();
  if (st.ok() && delivered != nullptr) *delivered = count;
  return st;
}

Status StockLevel(const TpccContext& ctx, IsolationLevel iso,
                  const StockLevelInput& in, uint32_t* low_stock) {
  const TpccTables& t = *ctx.tables;
  auto txn = ctx.db->Begin({iso});

  DistrictRow district;
  Status st = GetDistrict(txn.get(), t, in.w, in.d, &district);
  if (!st.ok()) return Fail(txn.get(), st);

  // Distinct items in the last 20 orders (spec 2.8.2.2) — the rw-edge with
  // NEWO, which both inserts these order lines and updates their stock.
  const uint32_t hi_o = district.next_o_id;  // Exclusive.
  const uint32_t lo_o =
      hi_o > kOrderStatusOrders ? hi_o - kOrderStatusOrders : 1;
  std::set<uint32_t> item_ids;
  st = txn->Scan(t.order_line, OrderLineKey(in.w, in.d, lo_o, 0),
                 OrderLineKey(in.w, in.d, hi_o - 1, UINT32_MAX),
                 [&item_ids](Slice, Slice value) {
                   OrderLineRow ol;
                   if (OrderLineRow::Decode(value, &ol)) {
                     item_ids.insert(ol.i_id);
                   }
                   return true;
                 });
  if (!st.ok()) return Fail(txn.get(), st);

  uint32_t low = 0;
  for (uint32_t i : item_ids) {
    std::string v;
    st = txn->Get(t.stock, StockKey(in.w, i), &v);
    if (!st.ok()) return Fail(txn.get(), st);
    StockRow stock;
    if (!StockRow::Decode(v, &stock)) {
      return Fail(txn.get(), Status::InvalidArgument("corrupt stock row"));
    }
    if (stock.quantity < in.threshold) ++low;
  }

  st = txn->Commit();
  if (st.ok() && low_stock != nullptr) *low_stock = low;
  return st;
}

Status CreditCheck(const TpccContext& ctx, IsolationLevel iso,
                   const CreditCheckInput& in, Credit* result) {
  const TpccTables& t = *ctx.tables;
  auto txn = ctx.db->Begin({iso});

  CustomerRow customer;
  Status st = GetCustomer(txn.get(), t, in.w, in.d, in.c, &customer);
  if (!st.ok()) return Fail(txn.get(), st);

  // Fig 5.1's aggregate: SUM(ol_amount) over this customer's undelivered
  // orders — join NewOrder against Order, then read each order's lines.
  std::vector<uint32_t> undelivered;
  st = txn->Scan(t.new_order, NewOrderKey(in.w, in.d, 0),
                 NewOrderKey(in.w, in.d, UINT32_MAX),
                 [&undelivered](Slice key, Slice) {
                   undelivered.push_back(OrderIdFromKey(key));
                   return true;
                 });
  if (!st.ok()) return Fail(txn.get(), st);

  int64_t neworder_balance = 0;
  for (uint32_t o_id : undelivered) {
    std::string v;
    st = txn->Get(t.order, OrderKey(in.w, in.d, o_id), &v);
    if (!st.ok()) return Fail(txn.get(), st);
    OrderRow order;
    if (!OrderRow::Decode(v, &order)) {
      return Fail(txn.get(), Status::InvalidArgument("corrupt order row"));
    }
    if (order.c_id != in.c) continue;
    st = txn->Scan(t.order_line, OrderLineKey(in.w, in.d, o_id, 0),
                   OrderLineKey(in.w, in.d, o_id, UINT32_MAX),
                   [&neworder_balance](Slice, Slice value) {
                     OrderLineRow ol;
                     if (OrderLineRow::Decode(value, &ol)) {
                       neworder_balance += ol.amount_cents;
                     }
                     return true;
                   });
    if (!st.ok()) return Fail(txn.get(), st);
  }

  const Credit credit =
      customer.balance_cents + neworder_balance > customer.credit_lim_cents
          ? Credit::kBad
          : Credit::kGood;
  // Fig 5.1 line 19: UPDATE Customer SET c_credit — the partition write
  // that New Order reads (the §5.3.3 rw-edge).
  st = txn->Put(t.customer_credit, CustomerKey(in.w, in.d, in.c),
                EncodeCredit(credit));
  if (!st.ok()) return Fail(txn.get(), st);

  st = txn->Commit();
  if (st.ok() && result != nullptr) *result = credit;
  return st;
}

}  // namespace ssidb::workloads::tpcc
