// SIReadIndex: the dedicated predicate index for SIREAD locks (§3.2, §3.3).
//
// SIREAD locks are not locks in the blocking sense: they never block and
// never delay anyone (Fig 3.4); their only job is to make rw-antidependency
// evidence discoverable — a writer acquiring EXCLUSIVE on a key must learn
// which transactions read it (Fig 3.5 line 4), and a reader must learn
// which transactions hold EXCLUSIVE on it (Fig 3.4 line 3). They also have
// different lifetime rules: SIREAD entries outlive their owner's commit
// (suspension, §3.3) and are dropped only by suspended-transaction cleanup.
// PostgreSQL's production SSI keeps this state in a dedicated partitioned
// predicate-lock structure outside the heavyweight lock manager for the
// same reasons (Ports & Grittner, VLDB 2012); this class is that structure.
//
// Shape:
//   * 64 key stripes, each a chained hash table keyed by
//     (table, kind, key-bytes) under its own mutex. Probes take a
//     LockKeyView (Slice + precomputed hash): no std::string is ever
//     materialized to look a key up.
//   * 64 transaction stripes (striped by txn id), each mapping TxnId to a
//     singly-linked chain of ownership links. ReleaseAll(txn) walks only
//     that chain — O(entries held), not O(stripes) — so releasing a
//     transaction that holds nothing costs one hash lookup.
//   * Entry and link nodes are pooled per stripe: a release pushes nodes
//     onto a free list and the next publish pops them, so steady-state
//     publish/release traffic performs no heap allocation (a recycled
//     entry even reuses its key std::string's capacity).
//   * Conflict reporting fills a caller-provided InlineVec; up to
//     kInlineConflicts holders are reported without allocation.
//
// Zero-allocation contract (the read hot path): Publish and CollectHolders
// on keys whose entry already exists and whose owner list fits the current
// capacity perform no heap allocation, and no key bytes are copied unless
// a brand-new entry node (not available from the free list) must be
// created. The allocations that remain are one-time pool growth.
//
// Threading contract: Publish and EraseOwn for a transaction are called
// only by the thread executing that transaction; ReleaseAll(txn) may be
// called from any thread but only once the transaction can no longer
// publish (it aborted, or committed and is being cleaned up). Probes
// (CollectHolders / Holds / HoldsAny) are safe from any thread at any
// time. Lock order inside the index: a transaction stripe mutex may be
// held while acquiring a key stripe mutex, never the reverse.
//
// Cross-structure atomicity (the §3.2 race): see the ordering argument in
// lock_manager.h — readers publish here *before* probing the lock table,
// writers grant there *before* probing here; the mutex happens-before
// chain guarantees at least one side observes the other.

#ifndef SSIDB_LOCK_SIREAD_INDEX_H_
#define SSIDB_LOCK_SIREAD_INDEX_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/inline_vec.h"
#include "src/common/slice.h"
#include "src/lock/lock_key.h"

namespace ssidb {

class SIReadIndex {
 public:
  /// Holders reported per probe without allocation.
  static constexpr size_t kInlineConflicts = 8;
  using ConflictBuf = InlineVec<TxnId, kInlineConflicts>;

  SIReadIndex() = default;
  ~SIReadIndex();

  SIReadIndex(const SIReadIndex&) = delete;
  SIReadIndex& operator=(const SIReadIndex&) = delete;

  /// Record that `txn` read the item `key` names. Idempotent; never
  /// blocks. Allocation-free when the entry exists and pools are warm.
  void Publish(TxnId txn, const LockKeyView& key);

  /// Append every SIREAD holder of `key` other than `self` to `out`
  /// (Fig 3.5 line 4 evidence for a writer). Does not clear `out`.
  void CollectHolders(TxnId self, const LockKeyView& key,
                      ConflictBuf* out) const;

  /// Drop `txn`'s SIREAD on `key` if present (§3.7.3: an EXCLUSIVE grant
  /// subsumes the owner's own SIREAD; the new version the writer creates
  /// will detect later conflicts instead).
  void EraseOwn(TxnId txn, const LockKeyView& key);

  /// Drop every SIREAD `txn` holds: abort, or suspended-transaction
  /// cleanup once no concurrent transaction remains (§3.3). O(held).
  void ReleaseAll(TxnId txn);

  bool Holds(TxnId txn, const LockKeyView& key) const;
  /// Commit-time suspension test (Fig 3.2 line 11): one hash lookup.
  bool HoldsAny(TxnId txn) const;

  /// Live (txn, key) SIREAD grants. Relaxed counter; never touches the
  /// stripe mutexes.
  size_t GrantCount() const {
    return static_cast<size_t>(grants_.load(std::memory_order_relaxed));
  }

  /// Distinct keys currently indexed (tests, diagnostics).
  size_t EntryCount() const;

 private:
  struct Entry {
    uint64_t hash = 0;
    TableId table = 0;
    LockKind kind = LockKind::kRow;
    std::string key;
    /// Owners of a SIREAD on this key; hot keys with many concurrent
    /// readers spill to a heap buffer that recycling preserves.
    InlineVec<TxnId, 4> owners;
    Entry* next = nullptr;  ///< Bucket chain, or free-list link.
  };

  /// One (txn, entry) ownership record, threaded on the owner's chain.
  struct OwnerLink {
    Entry* entry = nullptr;
    uint32_t key_stripe = 0;
    OwnerLink* next = nullptr;
  };

  struct KeyStripe {
    mutable std::mutex mu;
    /// Power-of-two chained hash table; lazily sized on first insert.
    std::vector<Entry*> buckets;
    size_t entry_count = 0;
    Entry* free_entries = nullptr;
  };

  struct TxnStripe {
    mutable std::mutex mu;
    std::unordered_map<TxnId, OwnerLink*> chains;
    OwnerLink* free_links = nullptr;
  };

  static constexpr size_t kNumStripes = 64;
  static constexpr size_t kInitialBuckets = 16;

  static size_t KeyStripeOf(uint64_t hash) { return hash % kNumStripes; }
  static size_t TxnStripeOf(TxnId txn) {
    // Ids are sequential; a multiplicative mix spreads neighbours.
    return (txn * 0x9E3779B97F4A7C15ULL >> 32) % kNumStripes;
  }

  /// Find the entry for `key` in `stripe`, or nullptr. Caller holds mu.
  Entry* FindLocked(const KeyStripe& stripe, const LockKeyView& key) const;
  /// Find-or-create. Caller holds mu.
  Entry* GetOrCreateLocked(KeyStripe& stripe, const LockKeyView& key);
  /// Unlink `e` from its bucket and push it on the free list (its owners
  /// list is empty). Caller holds mu.
  void RecycleEntryLocked(KeyStripe& stripe, Entry* e);
  /// Double the bucket array and relink every entry. Caller holds mu.
  void GrowLocked(KeyStripe& stripe);

  KeyStripe key_stripes_[kNumStripes];
  TxnStripe txn_stripes_[kNumStripes];
  std::atomic<uint64_t> grants_{0};
};

}  // namespace ssidb

#endif  // SSIDB_LOCK_SIREAD_INDEX_H_
