#include "src/lock/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace ssidb {

namespace {

constexpr uint8_t kSharedBit = static_cast<uint8_t>(LockMode::kShared);
constexpr uint8_t kExclusiveBit = static_cast<uint8_t>(LockMode::kExclusive);

/// Granted bits of another owner that are incompatible with `mode`.
/// SIREAD neither blocks nor is blocked (Fig 3.4) and never reaches the
/// blocking table: compatibility only constrains kShared/kExclusive. On
/// gap keys, kExclusive plays InnoDB's insert-intention role: two inserts
/// into the same gap do not block each other, but either blocks (and is
/// blocked by) a scanner's kShared gap lock (§2.5.2).
uint8_t IncompatibleMask(LockMode mode, LockKind kind) {
  const bool gap = kind == LockKind::kGap || kind == LockKind::kSupremum;
  switch (mode) {
    case LockMode::kShared:
      return kExclusiveBit;
    case LockMode::kExclusive:
      return gap ? kSharedBit : (kSharedBit | kExclusiveBit);
    case LockMode::kSIRead:
      return 0;
  }
  return 0;
}

LockKeyView ViewOf(const LockKey& key) {
  return LockKeyView{key.table, key.kind, Slice(key.key), key.Hash()};
}

}  // namespace

LockManager::LockManager(const Config& config) : config_(config) {
  if (config_.deadlock_policy == DeadlockPolicy::kPeriodic) {
    detector_ = std::thread([this] { DetectorLoop(); });
  }
}

LockManager::~LockManager() {
  stop_.store(true);
  if (detector_.joinable()) detector_.join();
}

void LockManager::MarkShardTouched(TxnId txn, size_t shard_idx) {
  TouchStripe& stripe = touch_stripes_[TouchStripeOf(txn)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  stripe.shard_masks[txn] |= uint64_t{1} << shard_idx;
}

uint64_t LockManager::TakeTouchedShards(TxnId txn) {
  TouchStripe& stripe = touch_stripes_[TouchStripeOf(txn)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.shard_masks.find(txn);
  if (it == stripe.shard_masks.end()) return 0;
  const uint64_t mask = it->second;
  stripe.shard_masks.erase(it);
  return mask;
}

void LockManager::CollectBlockers(const LockEntry& entry, TxnId txn,
                                  LockMode mode, LockKind kind,
                                  std::vector<TxnId>* blockers) {
  blockers->clear();
  const uint8_t mask = IncompatibleMask(mode, kind);
  if (mask == 0) return;
  for (const auto& [owner, bits] : entry.holders) {
    if (owner != txn && (bits & mask) != 0) blockers->push_back(owner);
  }
}

void LockManager::CollectExclusiveHolders(TxnId self, const LockKeyView& key,
                                          RwConflicts* out) const {
  const Shard& shard = shards_[key.hash % kNumShards];
  std::lock_guard<std::mutex> guard(shard.mu);
  auto it = shard.entries.find(key);  // Heterogeneous: no key copy.
  if (it == shard.entries.end()) return;
  for (const auto& [owner, bits] : it->second.holders) {
    if (owner != self && (bits & kExclusiveBit) != 0) out->push_back(owner);
  }
}

void LockManager::AcquireSIRead(TxnId txn, TableId table, LockKind kind,
                                Slice key, RwConflicts* rw_out) {
  // One hash of the key bytes serves the index stripe, the index bucket
  // and the lock-table probe.
  const LockKeyView view = MakeLockKeyView(table, kind, key);
  // Publish-then-probe: this order is what makes the split-structure
  // conflict detection lossless (see the §3.2 argument in the header).
  sireads_.Publish(txn, view);
  CollectExclusiveHolders(txn, view, rw_out);
}

AcquireResult LockManager::Acquire(TxnId txn, const LockKey& key,
                                   LockMode mode) {
  AcquireResult result;

  if (mode == LockMode::kSIRead) {
    // Historical entry point for SIREAD (tests, lock-table benchmarks):
    // same publish-then-probe fast lane, owning-key signature.
    AcquireSIRead(txn, key.table, key.kind, Slice(key.key),
                  &result.rw_conflicts);
    return result;
  }

  const uint64_t hash = key.Hash();
  const size_t shard_idx = hash % kNumShards;
  Shard& shard = shards_[shard_idx];
  const uint8_t bit = static_cast<uint8_t>(mode);

  // Mark the shard before attempting the acquisition so a granted lock
  // can never be missed by ReleaseAll (spurious marks are harmless).
  MarkShardTouched(txn, shard_idx);

  std::unique_lock<std::mutex> guard(shard.mu);

  // Grants `bit` to txn in the entry currently stored for `key`.
  // Re-looked-up on every call because the entries map may rehash while
  // we wait.
  auto grant = [&] {
    LockEntry& entry = shard.entries[key];
    uint8_t& bits = entry.holders[txn];
    const bool is_new_holder = (bits == 0);
    const uint8_t before = bits;
    if ((bits & bit) == 0) {
      bits |= bit;
      if (is_new_holder) shard.held[txn].push_back(key);
    }
    grant_count_.fetch_add(
        static_cast<uint64_t>(__builtin_popcount(bits) -
                              __builtin_popcount(before)),
        std::memory_order_relaxed);
  };

  // On success, gather the rw-antidependency evidence for a writer: the
  // SIREAD holders of this key (Fig 3.5 line 4). Runs *after* the
  // EXCLUSIVE grant is visible in this shard — the grant-then-probe half
  // of the §3.2 ordering argument. Also applies §3.7.3: the writer's own
  // SIREAD on the key is subsumed by the EXCLUSIVE lock.
  auto probe_sireads_after_grant = [&] {
    if (mode != LockMode::kExclusive) return;
    guard.unlock();
    const LockKeyView view{key.table, key.kind, Slice(key.key), hash};
    if (config_.upgrade_siread_locks) sireads_.EraseOwn(txn, view);
    sireads_.CollectHolders(txn, view, &result.rw_conflicts);
  };

  std::vector<TxnId> blockers;
  CollectBlockers(shard.entries[key], txn, mode, key.kind, &blockers);
  if (blockers.empty()) {
    grant();
    probe_sireads_after_grant();
    return result;
  }

  // Must wait.
  waits_.fetch_add(1, std::memory_order_relaxed);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.lock_timeout_ms);
  for (;;) {
    {
      std::lock_guard<std::mutex> g(graph_mu_);
      waits_for_[txn] = blockers;
      if (config_.deadlock_policy == DeadlockPolicy::kImmediate &&
          OnCycleLocked(txn)) {
        waits_for_.erase(txn);
        deadlocks_detected_.fetch_add(1, std::memory_order_relaxed);
        result.status = Status::Deadlock("lock cycle");
        return result;
      }
      if (killed_.erase(txn) > 0) {
        waits_for_.erase(txn);
        result.status = Status::Deadlock("chosen as deadlock victim");
        return result;
      }
    }
    // Bounded waits so periodic kills and external abort marks are seen
    // promptly even if no lock in this shard is released.
    shard.cv.wait_for(guard, std::chrono::milliseconds(2));
    if (std::chrono::steady_clock::now() > deadline) {
      ClearWaits(txn);
      result.status = Status::TimedOut("lock wait timeout");
      return result;
    }
    CollectBlockers(shard.entries[key], txn, mode, key.kind, &blockers);
    if (blockers.empty()) {
      ClearWaits(txn);
      grant();
      probe_sireads_after_grant();
      return result;
    }
  }
}

void LockManager::ReleaseLocked(Shard& shard, TxnId txn) {
  auto held_it = shard.held.find(txn);
  if (held_it == shard.held.end()) return;
  uint64_t dropped = 0;
  for (const LockKey& key : held_it->second) {
    auto entry_it = shard.entries.find(key);
    if (entry_it == shard.entries.end()) continue;
    auto holder_it = entry_it->second.holders.find(txn);
    if (holder_it == entry_it->second.holders.end()) continue;
    dropped += static_cast<uint64_t>(__builtin_popcount(holder_it->second));
    entry_it->second.holders.erase(holder_it);
    if (entry_it->second.holders.empty()) shard.entries.erase(entry_it);
  }
  if (dropped > 0) SubGrants(dropped);
  shard.held.erase(held_it);
}

void LockManager::ReleaseBlocking(TxnId txn) {
  uint64_t mask = TakeTouchedShards(txn);
  while (mask != 0) {
    const int shard_idx = __builtin_ctzll(mask);
    mask &= mask - 1;
    Shard& shard = shards_[shard_idx];
    bool notify;
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      notify = shard.held.count(txn) > 0;
      ReleaseLocked(shard, txn);
    }
    if (notify) shard.cv.notify_all();
  }
  ClearWaits(txn);
}

void LockManager::ReleaseAll(TxnId txn) {
  ReleaseBlocking(txn);
  sireads_.ReleaseAll(txn);
}

void LockManager::ReleaseAllExceptSIRead(TxnId txn) { ReleaseBlocking(txn); }

bool LockManager::HoldsAnySIRead(TxnId txn) const {
  return sireads_.HoldsAny(txn);
}

bool LockManager::Holds(TxnId txn, const LockKey& key, LockMode mode) const {
  if (mode == LockMode::kSIRead) {
    return sireads_.Holds(txn, ViewOf(key));
  }
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto entry_it = shard.entries.find(key);
  if (entry_it == shard.entries.end()) return false;
  auto holder_it = entry_it->second.holders.find(txn);
  if (holder_it == entry_it->second.holders.end()) return false;
  return (holder_it->second & static_cast<uint8_t>(mode)) != 0;
}

void LockManager::SetWaits(TxnId txn, const std::vector<TxnId>& blockers) {
  std::lock_guard<std::mutex> guard(graph_mu_);
  waits_for_[txn] = blockers;
}

void LockManager::ClearWaits(TxnId txn) {
  std::lock_guard<std::mutex> guard(graph_mu_);
  waits_for_.erase(txn);
}

bool LockManager::OnCycleLocked(TxnId start) const {
  // Iterative DFS over waits-for edges looking for a path back to start.
  std::vector<TxnId> stack;
  std::unordered_set<TxnId> visited;
  stack.push_back(start);
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    auto it = waits_for_.find(t);
    if (it == waits_for_.end()) continue;
    for (TxnId next : it->second) {
      if (next == start) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

void LockManager::KillCyclesLocked() {
  // For each waiting transaction on a cycle, kill the youngest (largest
  // id) member of that cycle, mimicking a coarse periodic detector.
  std::unordered_set<TxnId> already_killed;
  for (const auto& [txn, edges] : waits_for_) {
    (void)edges;
    if (already_killed.count(txn) > 0) continue;
    if (!OnCycleLocked(txn)) continue;
    // Walk the cycle to find the youngest member: restrict to nodes that
    // can reach txn and are reachable from txn. Cheap approximation: all
    // waiting nodes reachable from txn that are on a cycle themselves.
    TxnId victim = txn;
    std::vector<TxnId> stack{txn};
    std::unordered_set<TxnId> seen{txn};
    while (!stack.empty()) {
      const TxnId t = stack.back();
      stack.pop_back();
      auto it = waits_for_.find(t);
      if (it == waits_for_.end()) continue;
      for (TxnId next : it->second) {
        if (seen.insert(next).second) {
          if (waits_for_.count(next) > 0 && next > victim) victim = next;
          stack.push_back(next);
        }
      }
    }
    killed_.insert(victim);
    already_killed.insert(victim);
    deadlocks_detected_.fetch_add(1, std::memory_order_relaxed);
  }
}

void LockManager::DetectorLoop() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.deadlock_scan_interval_ms));
    bool found;
    {
      std::lock_guard<std::mutex> guard(graph_mu_);
      const size_t before = killed_.size();
      KillCyclesLocked();
      found = killed_.size() > before;
    }
    if (found) {
      for (Shard& shard : shards_) shard.cv.notify_all();
    }
  }
}

}  // namespace ssidb
