#include "src/lock/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace ssidb {

namespace {

constexpr uint8_t kSharedBit = static_cast<uint8_t>(LockMode::kShared);
constexpr uint8_t kExclusiveBit = static_cast<uint8_t>(LockMode::kExclusive);
constexpr uint8_t kSIReadBit = static_cast<uint8_t>(LockMode::kSIRead);

/// Granted bits of another owner that are incompatible with `mode`.
/// SIREAD neither blocks nor is blocked (Fig 3.4): compatibility only
/// constrains kShared/kExclusive. On gap keys, kExclusive plays InnoDB's
/// insert-intention role: two inserts into the same gap do not block each
/// other, but either blocks (and is blocked by) a scanner's kShared gap
/// lock (§2.5.2).
uint8_t IncompatibleMask(LockMode mode, LockKind kind) {
  const bool gap = kind == LockKind::kGap || kind == LockKind::kSupremum;
  switch (mode) {
    case LockMode::kShared:
      return kExclusiveBit;
    case LockMode::kExclusive:
      return gap ? kSharedBit : (kSharedBit | kExclusiveBit);
    case LockMode::kSIRead:
      return 0;
  }
  return 0;
}

}  // namespace

LockManager::LockManager(const Config& config) : config_(config) {
  if (config_.deadlock_policy == DeadlockPolicy::kPeriodic) {
    detector_ = std::thread([this] { DetectorLoop(); });
  }
}

LockManager::~LockManager() {
  stop_.store(true);
  if (detector_.joinable()) detector_.join();
}

void LockManager::CollectBlockers(const LockEntry& entry, TxnId txn,
                                  LockMode mode, LockKind kind,
                                  std::vector<TxnId>* blockers) {
  blockers->clear();
  const uint8_t mask = IncompatibleMask(mode, kind);
  if (mask == 0) return;
  for (const auto& [owner, bits] : entry.holders) {
    if (owner != txn && (bits & mask) != 0) blockers->push_back(owner);
  }
}

AcquireResult LockManager::Acquire(TxnId txn, const LockKey& key,
                                   LockMode mode) {
  AcquireResult result;
  Shard& shard = ShardFor(key);
  const uint8_t bit = static_cast<uint8_t>(mode);

  std::unique_lock<std::mutex> guard(shard.mu);

  // Grants `bit` to txn in the entry currently stored for `key` and gathers
  // rw-conflict evidence atomically with the grant (§3.2). Re-looked-up on
  // every call because the entries map may rehash while we wait.
  auto grant = [&] {
    LockEntry& entry = shard.entries[key];
    uint8_t& bits = entry.holders[txn];
    const bool is_new_holder = (bits == 0);
    const uint8_t before = bits;
    if ((bits & bit) == 0) {
      bits |= bit;
      if (is_new_holder) shard.held[txn].push_back(key);
    }
    // §3.7.3: an EXCLUSIVE grant subsumes the owner's SIREAD lock; the new
    // version the writer creates will detect later conflicts instead.
    if (mode == LockMode::kExclusive && config_.upgrade_siread_locks) {
      bits &= static_cast<uint8_t>(~kSIReadBit);
    }
    grant_count_.fetch_add(
        __builtin_popcount(bits) - __builtin_popcount(before),
        std::memory_order_relaxed);
    const uint8_t probe = (mode == LockMode::kExclusive) ? kSIReadBit
                          : (mode == LockMode::kSIRead)  ? kExclusiveBit
                                                         : 0;
    if (probe != 0) {
      for (const auto& [owner, obits] : entry.holders) {
        if (owner != txn && (obits & probe) != 0) {
          result.rw_conflicts.push_back(owner);
        }
      }
    }
  };

  std::vector<TxnId> blockers;
  CollectBlockers(shard.entries[key], txn, mode, key.kind, &blockers);
  if (blockers.empty()) {
    grant();
    return result;
  }

  // Must wait.
  waits_.fetch_add(1, std::memory_order_relaxed);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.lock_timeout_ms);
  for (;;) {
    {
      std::lock_guard<std::mutex> g(graph_mu_);
      waits_for_[txn] = blockers;
      if (config_.deadlock_policy == DeadlockPolicy::kImmediate &&
          OnCycleLocked(txn)) {
        waits_for_.erase(txn);
        deadlocks_detected_.fetch_add(1, std::memory_order_relaxed);
        result.status = Status::Deadlock("lock cycle");
        return result;
      }
      if (killed_.erase(txn) > 0) {
        waits_for_.erase(txn);
        result.status = Status::Deadlock("chosen as deadlock victim");
        return result;
      }
    }
    // Bounded waits so periodic kills and external abort marks are seen
    // promptly even if no lock in this shard is released.
    shard.cv.wait_for(guard, std::chrono::milliseconds(2));
    if (std::chrono::steady_clock::now() > deadline) {
      ClearWaits(txn);
      result.status = Status::TimedOut("lock wait timeout");
      return result;
    }
    CollectBlockers(shard.entries[key], txn, mode, key.kind, &blockers);
    if (blockers.empty()) {
      ClearWaits(txn);
      grant();
      return result;
    }
  }
}

void LockManager::ReleaseLocked(Shard& shard, TxnId txn, uint8_t keep_mask) {
  auto held_it = shard.held.find(txn);
  if (held_it == shard.held.end()) return;
  std::vector<LockKey> still_held;
  for (const LockKey& key : held_it->second) {
    auto entry_it = shard.entries.find(key);
    if (entry_it == shard.entries.end()) continue;
    auto holder_it = entry_it->second.holders.find(txn);
    if (holder_it == entry_it->second.holders.end()) continue;
    const uint8_t before = holder_it->second;
    holder_it->second &= keep_mask;
    grant_count_.fetch_sub(
        __builtin_popcount(before) - __builtin_popcount(holder_it->second),
        std::memory_order_relaxed);
    if (holder_it->second == 0) {
      entry_it->second.holders.erase(holder_it);
      if (entry_it->second.holders.empty()) shard.entries.erase(entry_it);
    } else {
      still_held.push_back(key);
    }
  }
  if (still_held.empty()) {
    shard.held.erase(held_it);
  } else {
    held_it->second = std::move(still_held);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  for (Shard& shard : shards_) {
    bool notify;
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      notify = shard.held.count(txn) > 0;
      ReleaseLocked(shard, txn, 0);
    }
    if (notify) shard.cv.notify_all();
  }
  ClearWaits(txn);
}

void LockManager::ReleaseAllExceptSIRead(TxnId txn) {
  for (Shard& shard : shards_) {
    bool notify;
    {
      std::lock_guard<std::mutex> guard(shard.mu);
      notify = shard.held.count(txn) > 0;
      ReleaseLocked(shard, txn, kSIReadBit);
    }
    if (notify) shard.cv.notify_all();
  }
  ClearWaits(txn);
}

bool LockManager::HoldsAnySIRead(TxnId txn) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mu);
    auto held_it = shard.held.find(txn);
    if (held_it == shard.held.end()) continue;
    for (const LockKey& key : held_it->second) {
      auto entry_it = shard.entries.find(key);
      if (entry_it == shard.entries.end()) continue;
      auto holder_it = entry_it->second.holders.find(txn);
      if (holder_it != entry_it->second.holders.end() &&
          (holder_it->second & kSIReadBit) != 0) {
        return true;
      }
    }
  }
  return false;
}

bool LockManager::Holds(TxnId txn, const LockKey& key, LockMode mode) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mu);
  auto entry_it = shard.entries.find(key);
  if (entry_it == shard.entries.end()) return false;
  auto holder_it = entry_it->second.holders.find(txn);
  if (holder_it == entry_it->second.holders.end()) return false;
  return (holder_it->second & static_cast<uint8_t>(mode)) != 0;
}

void LockManager::SetWaits(TxnId txn, const std::vector<TxnId>& blockers) {
  std::lock_guard<std::mutex> guard(graph_mu_);
  waits_for_[txn] = blockers;
}

void LockManager::ClearWaits(TxnId txn) {
  std::lock_guard<std::mutex> guard(graph_mu_);
  waits_for_.erase(txn);
}

bool LockManager::OnCycleLocked(TxnId start) const {
  // Iterative DFS over waits-for edges looking for a path back to start.
  std::vector<TxnId> stack;
  std::unordered_set<TxnId> visited;
  stack.push_back(start);
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    auto it = waits_for_.find(t);
    if (it == waits_for_.end()) continue;
    for (TxnId next : it->second) {
      if (next == start) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

void LockManager::KillCyclesLocked() {
  // For each waiting transaction on a cycle, kill the youngest (largest
  // id) member of that cycle, mimicking a coarse periodic detector.
  std::unordered_set<TxnId> already_killed;
  for (const auto& [txn, edges] : waits_for_) {
    (void)edges;
    if (already_killed.count(txn) > 0) continue;
    if (!OnCycleLocked(txn)) continue;
    // Walk the cycle to find the youngest member: restrict to nodes that
    // can reach txn and are reachable from txn. Cheap approximation: all
    // waiting nodes reachable from txn that are on a cycle themselves.
    TxnId victim = txn;
    std::vector<TxnId> stack{txn};
    std::unordered_set<TxnId> seen{txn};
    while (!stack.empty()) {
      const TxnId t = stack.back();
      stack.pop_back();
      auto it = waits_for_.find(t);
      if (it == waits_for_.end()) continue;
      for (TxnId next : it->second) {
        if (seen.insert(next).second) {
          if (waits_for_.count(next) > 0 && next > victim) victim = next;
          stack.push_back(next);
        }
      }
    }
    killed_.insert(victim);
    already_killed.insert(victim);
    deadlocks_detected_.fetch_add(1, std::memory_order_relaxed);
  }
}

void LockManager::DetectorLoop() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.deadlock_scan_interval_ms));
    bool found;
    {
      std::lock_guard<std::mutex> guard(graph_mu_);
      const size_t before = killed_.size();
      KillCyclesLocked();
      found = killed_.size() > before;
    }
    if (found) {
      for (Shard& shard : shards_) shard.cv.notify_all();
    }
  }
}

}  // namespace ssidb
