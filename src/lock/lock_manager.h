// Lock manager (paper §2.2.1, §3.2, §3.5).
//
// Three modes:
//   kShared     - S2PL read locks; block and are blocked by kExclusive.
//   kExclusive  - write locks (all isolation levels).
//   kSIRead     - the paper's new mode: records that an SI transaction read
//                 an item. Never blocks and never delays anyone (Fig 3.4);
//                 its coexistence with kExclusive on one key is the signal
//                 of an rw-antidependency, which Acquire() reports to the
//                 caller from *both* acquisition orders so that the §3.2
//                 race cannot lose a conflict.
//
// Keys carry a kind: row locks, gap locks (the InnoDB-style "gap before
// this key" used for phantom detection, §2.5.2), a per-table supremum gap,
// and page locks (Berkeley DB granularity). Locks of different kinds never
// interact. SIREAD locks outlive their owner's commit (§3.3): the
// transaction manager releases them during suspended-transaction cleanup.
//
// Deadlocks: a waits-for graph keyed by transaction id. kImmediate runs a
// DFS before each block (requester aborts on a cycle); kPeriodic models
// Berkeley DB's db_perf detector: a background thread scans every interval
// and kills the youngest transaction of each cycle (§6.1.3).

#ifndef SSIDB_LOCK_LOCK_MANAGER_H_
#define SSIDB_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/options.h"
#include "src/common/status.h"
#include "src/storage/table.h"
#include "src/storage/version.h"

namespace ssidb {

enum class LockMode : uint8_t {
  kShared = 1,
  kExclusive = 2,
  kSIRead = 4,
};

/// What a lock protects.
enum class LockKind : uint8_t {
  kRow = 0,
  /// The open interval below `key` (insert/delete phantoms, Figs 3.6/3.7).
  kGap = 1,
  /// The gap above the largest key of the table (next(x) when x is last).
  kSupremum = 2,
  /// A whole page bucket (Berkeley DB granularity, §4.1).
  kPage = 3,
};

struct LockKey {
  TableId table = 0;
  LockKind kind = LockKind::kRow;
  std::string key;

  bool operator==(const LockKey& o) const {
    return table == o.table && kind == o.kind && key == o.key;
  }
};

struct LockKeyHash {
  size_t operator()(const LockKey& k) const {
    uint64_t h = 1469598103934665603ULL;
    auto feed = [&h](const char* p, size_t n) {
      for (size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(p[i]);
        h *= 1099511628211ULL;
      }
    };
    feed(reinterpret_cast<const char*>(&k.table), sizeof(k.table));
    feed(reinterpret_cast<const char*>(&k.kind), sizeof(k.kind));
    feed(k.key.data(), k.key.size());
    return static_cast<size_t>(h);
  }
};

/// Outcome of an Acquire call.
struct AcquireResult {
  /// kOk, kDeadlock (victim of immediate or periodic detection) or
  /// kTimedOut. SIREAD acquisition always succeeds.
  Status status;
  /// rw-antidependency evidence gathered atomically at grant time:
  /// acquiring kExclusive reports current kSIRead holders (Fig 3.5 line 4);
  /// acquiring kSIRead reports current kExclusive holders (Fig 3.4 line 3).
  std::vector<TxnId> rw_conflicts;
};

class LockManager {
 public:
  struct Config {
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kImmediate;
    uint32_t deadlock_scan_interval_ms = 500;
    uint32_t lock_timeout_ms = 10000;
    /// §3.7.3: granting kExclusive drops the owner's own kSIRead lock on
    /// the same key.
    bool upgrade_siread_locks = true;
  };

  explicit LockManager(const Config& config);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquire `mode` on `key` for `txn`. Blocks for kShared/kExclusive when
  /// incompatible locks are granted to other transactions; never blocks for
  /// kSIRead. Re-acquiring an already-held mode is a no-op (returns any
  /// current conflict evidence again). Holding kShared and requesting
  /// kExclusive upgrades once other holders drain.
  AcquireResult Acquire(TxnId txn, const LockKey& key, LockMode mode);

  /// Release every lock `txn` holds (commit/abort of non-suspended
  /// transactions, and cleanup of suspended ones).
  void ReleaseAll(TxnId txn);

  /// Release everything except kSIRead locks (commit of a transaction that
  /// must stay suspended, Fig 3.2 line 9).
  void ReleaseAllExceptSIRead(TxnId txn);

  /// True if `txn` currently holds at least one kSIRead lock (commit-time
  /// suspension test, Fig 3.2 line 11).
  bool HoldsAnySIRead(TxnId txn) const;

  /// True if `txn` holds `mode` on `key` (tests).
  bool Holds(TxnId txn, const LockKey& key, LockMode mode) const;

  /// Total number of (txn, key, mode-bit) grants in the table (tests and
  /// lock-table-pressure benchmarks). Maintained as a relaxed atomic
  /// counter at grant/release time, so stats sampling never touches the
  /// shard mutexes.
  size_t GrantCount() const {
    return static_cast<size_t>(grant_count_.load(std::memory_order_relaxed));
  }

  /// Counters for the benchmark reports.
  uint64_t deadlocks_detected() const {
    return deadlocks_detected_.load(std::memory_order_relaxed);
  }
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }

 private:
  struct LockEntry {
    /// owner -> bitmask of LockMode bits granted.
    std::unordered_map<TxnId, uint8_t> holders;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<LockKey, LockEntry, LockKeyHash> entries;
    /// Per-transaction list of keys with at least one grant in this shard.
    std::unordered_map<TxnId, std::vector<LockKey>> held;
  };

  static constexpr size_t kNumShards = 64;

  Shard& ShardFor(const LockKey& key) {
    return shards_[LockKeyHash()(key) % kNumShards];
  }
  const Shard& ShardFor(const LockKey& key) const {
    return shards_[LockKeyHash()(key) % kNumShards];
  }

  /// Owners (other than txn) whose granted bits block `mode` on a key of
  /// the given kind (gap keys use insert-intention compatibility).
  static void CollectBlockers(const LockEntry& entry, TxnId txn,
                              LockMode mode, LockKind kind,
                              std::vector<TxnId>* blockers);

  /// Record/clear the waits-for edge set of a blocked transaction.
  void SetWaits(TxnId txn, const std::vector<TxnId>& blockers);
  void ClearWaits(TxnId txn);

  /// DFS from `start` through waits-for edges; true if `start` is on a
  /// cycle. Caller holds graph_mu_.
  bool OnCycleLocked(TxnId start) const;

  /// Periodic detector body.
  void DetectorLoop();
  void KillCyclesLocked();

  void ReleaseLocked(Shard& shard, TxnId txn, uint8_t keep_mask);

  const Config config_;

  Shard shards_[kNumShards];

  mutable std::mutex graph_mu_;
  std::unordered_map<TxnId, std::vector<TxnId>> waits_for_;
  std::unordered_set<TxnId> killed_;

  std::atomic<uint64_t> deadlocks_detected_{0};
  std::atomic<uint64_t> waits_{0};
  std::atomic<int64_t> grant_count_{0};

  std::atomic<bool> stop_{false};
  std::thread detector_;
};

}  // namespace ssidb

#endif  // SSIDB_LOCK_LOCK_MANAGER_H_
