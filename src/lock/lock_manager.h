// Lock manager (paper §2.2.1, §3.2, §3.5).
//
// Three modes:
//   kShared     - S2PL read locks; block and are blocked by kExclusive.
//   kExclusive  - write locks (all isolation levels).
//   kSIRead     - the paper's new mode: records that an SI transaction read
//                 an item. Never blocks and never delays anyone (Fig 3.4);
//                 its coexistence with kExclusive on one key is the signal
//                 of an rw-antidependency, which Acquire() reports to the
//                 caller from *both* acquisition orders so that the §3.2
//                 race cannot lose a conflict.
//
// SIREAD state does not live in the blocking lock table: it is kept in a
// dedicated read-optimized structure, the SIReadIndex (siread_index.h),
// because SIREAD traffic dominates the read path, never participates in
// blocking, and has different lifetime rules — SIREAD locks outlive their
// owner's commit (§3.3) and are dropped by suspended-transaction cleanup.
// The LockManager owns the index and keeps the historical API (kSIRead
// Acquire/Holds/HoldsAnySIRead/ReleaseAll) by delegation; hot paths use
// the allocation-free fast lane AcquireSIRead() instead.
//
// Cross-structure atomicity (the §3.2 race, Figs 3.4/3.5): with SIREAD
// and EXCLUSIVE state in two differently-latched structures, conflict
// evidence must still never be lost. Both sides follow publish-then-probe:
//
//   reader: (R1) publish SIREAD in the index   [index stripe mutex]
//           (R2) probe EXCLUSIVE holders here  [lock-table shard mutex]
//   writer: (W1) grant EXCLUSIVE here          [lock-table shard mutex]
//           (W2) probe SIREAD holders in index [index stripe mutex]
//
// Claim: the reader reports the writer, or the writer reports the reader
// (possibly both). Suppose the reader misses (R2 sees no EXCLUSIVE). Then
// R2's critical section on the shard mutex precedes W1's. By program
// order R1 precedes R2, and W1 precedes W2. So R1 happens-before W2
// through the chain R1 →(sb) R2-unlock →(sync) W1-lock →(sb) W2, and W2's
// probe of the index — a later critical section on the same stripe mutex
// — must observe the published SIREAD. Symmetrically, if the writer
// misses, the reader's probe observes the EXCLUSIVE grant. The only lost
// case would need both probes to precede both publishes, which
// publish-then-probe program order forbids.
//
// Keys carry a kind: row locks, gap locks (the InnoDB-style "gap before
// this key" used for phantom detection, §2.5.2), a per-table supremum gap,
// and page locks (Berkeley DB granularity). Locks of different kinds never
// interact.
//
// Deadlocks: a waits-for graph keyed by transaction id. kImmediate runs a
// DFS before each block (requester aborts on a cycle); kPeriodic models
// Berkeley DB's db_perf detector: a background thread scans every interval
// and kills the youngest transaction of each cycle (§6.1.3).

#ifndef SSIDB_LOCK_LOCK_MANAGER_H_
#define SSIDB_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/inline_vec.h"
#include "src/common/options.h"
#include "src/common/status.h"
#include "src/lock/lock_key.h"
#include "src/lock/siread_index.h"
#include "src/storage/table.h"
#include "src/storage/version.h"

namespace ssidb {

/// rw-antidependency evidence buffer: no allocation for up to 8 partners.
using RwConflicts = SIReadIndex::ConflictBuf;

/// Outcome of an Acquire call.
struct AcquireResult {
  /// kOk, kDeadlock (victim of immediate or periodic detection) or
  /// kTimedOut. SIREAD acquisition always succeeds.
  Status status;
  /// rw-antidependency evidence gathered at grant time (§3.2): acquiring
  /// kExclusive reports current kSIRead holders (Fig 3.5 line 4);
  /// acquiring kSIRead reports current kExclusive holders (Fig 3.4 line 3).
  RwConflicts rw_conflicts;
};

class LockManager {
 public:
  struct Config {
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kImmediate;
    uint32_t deadlock_scan_interval_ms = 500;
    uint32_t lock_timeout_ms = 10000;
    /// §3.7.3: granting kExclusive drops the owner's own kSIRead lock on
    /// the same key.
    bool upgrade_siread_locks = true;
  };

  explicit LockManager(const Config& config);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquire `mode` on `key` for `txn`. Blocks for kShared/kExclusive when
  /// incompatible locks are granted to other transactions; never blocks for
  /// kSIRead (delegated to the SIReadIndex). Re-acquiring an already-held
  /// mode is a no-op (returns any current conflict evidence again).
  /// Holding kShared and requesting kExclusive upgrades once other holders
  /// drain.
  AcquireResult Acquire(TxnId txn, const LockKey& key, LockMode mode);

  /// SSI read-path fast lane: publish `txn`'s SIREAD on (table, kind, key)
  /// and append the current EXCLUSIVE holders to `rw_out` (Fig 3.4
  /// line 3), in the publish-then-probe order the §3.2 argument above
  /// requires. Never blocks; performs no heap allocation on the warm
  /// no-conflict path (see the SIReadIndex contract) — in particular the
  /// key travels as a Slice end to end.
  void AcquireSIRead(TxnId txn, TableId table, LockKind kind, Slice key,
                     RwConflicts* rw_out);

  /// Release every lock `txn` holds — blocking locks *and* SIREAD entries
  /// (abort of any transaction, and cleanup of suspended ones).
  void ReleaseAll(TxnId txn);

  /// Release `txn`'s blocking (kShared/kExclusive) locks but keep its
  /// SIREAD entries (commit of a transaction that must stay suspended,
  /// Fig 3.2 line 9). With SIREAD state in its own index this touches
  /// only the blocking lock table.
  void ReleaseAllExceptSIRead(TxnId txn);

  /// True if `txn` currently holds at least one kSIRead lock (commit-time
  /// suspension test, Fig 3.2 line 11). One hash lookup in the index.
  bool HoldsAnySIRead(TxnId txn) const;

  /// True if `txn` holds `mode` on `key` (tests).
  bool Holds(TxnId txn, const LockKey& key, LockMode mode) const;

  /// Total number of (txn, key, mode-bit) grants — blocking table plus
  /// SIREAD index. Maintained as relaxed atomic counters at grant/release
  /// time, so stats sampling never touches the shard mutexes.
  size_t GrantCount() const {
    return static_cast<size_t>(
               grant_count_.load(std::memory_order_relaxed)) +
           sireads_.GrantCount();
  }

  /// The SIREAD predicate index. The transaction manager drives suspended
  /// cleanup against it directly; tests and benchmarks may probe it.
  SIReadIndex* siread_index() { return &sireads_; }
  const SIReadIndex* siread_index() const { return &sireads_; }

  /// Counters for the benchmark reports.
  uint64_t deadlocks_detected() const {
    return deadlocks_detected_.load(std::memory_order_relaxed);
  }
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }

 private:
  struct LockEntry {
    /// owner -> bitmask of LockMode bits granted (kShared/kExclusive only;
    /// SIREAD lives in the SIReadIndex).
    std::unordered_map<TxnId, uint8_t> holders;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<LockKey, LockEntry, LockKeyHash, LockKeyEq> entries;
    /// Per-transaction list of keys with at least one grant in this shard.
    std::unordered_map<TxnId, std::vector<LockKey>> held;
  };

  /// Striped registry of which shards a transaction has (possibly)
  /// acquired blocking locks in, so ReleaseAll visits only those shards
  /// instead of sweeping all 64. A shard bit is set *before* the
  /// acquisition attempt, so a granted lock always has its bit visible to
  /// any later release; spurious bits (failed acquisitions) only cost a
  /// wasted shard visit.
  struct TouchStripe {
    mutable std::mutex mu;
    std::unordered_map<TxnId, uint64_t> shard_masks;
  };

  static constexpr size_t kNumShards = 64;
  static constexpr size_t kNumTouchStripes = 64;
  static_assert(kNumShards <= 64, "shard mask is a uint64_t");

  Shard& ShardFor(const LockKey& key) {
    // key.Hash() is cached: shard routing and the entries-map probe of one
    // acquisition hash the key bytes exactly once.
    return shards_[key.Hash() % kNumShards];
  }
  const Shard& ShardFor(const LockKey& key) const {
    return shards_[key.Hash() % kNumShards];
  }

  static size_t TouchStripeOf(TxnId txn) {
    return (txn * 0x9E3779B97F4A7C15ULL >> 32) % kNumTouchStripes;
  }
  void MarkShardTouched(TxnId txn, size_t shard_idx);
  /// Remove and return the touched-shard mask (0 if never touched).
  uint64_t TakeTouchedShards(TxnId txn);

  /// Owners (other than txn) whose granted bits block `mode` on a key of
  /// the given kind (gap keys use insert-intention compatibility).
  static void CollectBlockers(const LockEntry& entry, TxnId txn,
                              LockMode mode, LockKind kind,
                              std::vector<TxnId>* blockers);

  /// Append the EXCLUSIVE holders of `key` other than `self` to `out`.
  /// Heterogeneous probe: no owning key is materialized.
  void CollectExclusiveHolders(TxnId self, const LockKeyView& key,
                               RwConflicts* out) const;

  /// Record/clear the waits-for edge set of a blocked transaction.
  void SetWaits(TxnId txn, const std::vector<TxnId>& blockers);
  void ClearWaits(TxnId txn);

  /// DFS from `start` through waits-for edges; true if `start` is on a
  /// cycle. Caller holds graph_mu_.
  bool OnCycleLocked(TxnId start) const;

  /// Periodic detector body.
  void DetectorLoop();
  void KillCyclesLocked();

  /// Drop every grant `txn` holds in `shard`. Caller holds shard.mu.
  void ReleaseLocked(Shard& shard, TxnId txn);
  /// Release blocking locks only (shared by ReleaseAll and
  /// ReleaseAllExceptSIRead).
  void ReleaseBlocking(TxnId txn);

  /// Decrement grant_count_ by `n` with the not-below-zero contract:
  /// every decrement corresponds to previously counted grants, asserted
  /// in debug builds.
  void SubGrants(uint64_t n) {
    const uint64_t prev = grant_count_.fetch_sub(n, std::memory_order_relaxed);
    assert(prev >= n && "grant_count_ underflow");
    (void)prev;
  }

  const Config config_;

  Shard shards_[kNumShards];
  TouchStripe touch_stripes_[kNumTouchStripes];
  SIReadIndex sireads_;

  mutable std::mutex graph_mu_;
  std::unordered_map<TxnId, std::vector<TxnId>> waits_for_;
  std::unordered_set<TxnId> killed_;

  std::atomic<uint64_t> deadlocks_detected_{0};
  std::atomic<uint64_t> waits_{0};
  /// Live blocking-table grants. Unsigned with an explicit
  /// decrement-not-below-zero contract (SubGrants).
  std::atomic<uint64_t> grant_count_{0};

  std::atomic<bool> stop_{false};
  std::thread detector_;
};

}  // namespace ssidb

#endif  // SSIDB_LOCK_LOCK_MANAGER_H_
