#include "src/lock/siread_index.h"

#include <cassert>

namespace ssidb {

SIReadIndex::~SIReadIndex() {
  for (KeyStripe& stripe : key_stripes_) {
    for (Entry* head : stripe.buckets) {
      while (head != nullptr) {
        Entry* next = head->next;
        delete head;
        head = next;
      }
    }
    Entry* free_entry = stripe.free_entries;
    while (free_entry != nullptr) {
      Entry* next = free_entry->next;
      delete free_entry;
      free_entry = next;
    }
  }
  for (TxnStripe& stripe : txn_stripes_) {
    for (auto& [txn, head] : stripe.chains) {
      (void)txn;
      OwnerLink* link = head;
      while (link != nullptr) {
        OwnerLink* next = link->next;
        delete link;
        link = next;
      }
    }
    OwnerLink* free_link = stripe.free_links;
    while (free_link != nullptr) {
      OwnerLink* next = free_link->next;
      delete free_link;
      free_link = next;
    }
  }
}

SIReadIndex::Entry* SIReadIndex::FindLocked(const KeyStripe& stripe,
                                            const LockKeyView& key) const {
  if (stripe.buckets.empty()) return nullptr;
  const size_t b = (key.hash / kNumStripes) & (stripe.buckets.size() - 1);
  for (Entry* e = stripe.buckets[b]; e != nullptr; e = e->next) {
    if (e->hash == key.hash && e->table == key.table && e->kind == key.kind &&
        Slice(e->key) == key.key) {
      return e;
    }
  }
  return nullptr;
}

void SIReadIndex::GrowLocked(KeyStripe& stripe) {
  const size_t new_size =
      stripe.buckets.empty() ? kInitialBuckets : stripe.buckets.size() * 2;
  std::vector<Entry*> fresh(new_size, nullptr);
  for (Entry* head : stripe.buckets) {
    while (head != nullptr) {
      Entry* next = head->next;
      const size_t b = (head->hash / kNumStripes) & (new_size - 1);
      head->next = fresh[b];
      fresh[b] = head;
      head = next;
    }
  }
  stripe.buckets.swap(fresh);
}

SIReadIndex::Entry* SIReadIndex::GetOrCreateLocked(KeyStripe& stripe,
                                                   const LockKeyView& key) {
  Entry* e = FindLocked(stripe, key);
  if (e != nullptr) return e;
  if (stripe.entry_count + 1 > stripe.buckets.size()) GrowLocked(stripe);
  if (stripe.free_entries != nullptr) {
    e = stripe.free_entries;
    stripe.free_entries = e->next;
  } else {
    e = new Entry();
  }
  e->hash = key.hash;
  e->table = key.table;
  e->kind = key.kind;
  // assign() reuses the recycled string's capacity: no allocation unless
  // this key is longer than any the node has held before.
  e->key.assign(key.key.data(), key.key.size());
  assert(e->owners.empty());
  const size_t b = (key.hash / kNumStripes) & (stripe.buckets.size() - 1);
  e->next = stripe.buckets[b];
  stripe.buckets[b] = e;
  ++stripe.entry_count;
  return e;
}

void SIReadIndex::RecycleEntryLocked(KeyStripe& stripe, Entry* e) {
  const size_t b = (e->hash / kNumStripes) & (stripe.buckets.size() - 1);
  Entry** link = &stripe.buckets[b];
  while (*link != e) link = &(*link)->next;
  *link = e->next;
  e->next = stripe.free_entries;
  stripe.free_entries = e;
  --stripe.entry_count;
}

void SIReadIndex::Publish(TxnId txn, const LockKeyView& key) {
  const size_t ks = KeyStripeOf(key.hash);
  Entry* e;
  {
    KeyStripe& stripe = key_stripes_[ks];
    std::lock_guard<std::mutex> guard(stripe.mu);
    e = GetOrCreateLocked(stripe, key);
    for (TxnId owner : e->owners) {
      if (owner == txn) return;  // Idempotent re-read: already published.
    }
    e->owners.push_back(txn);
  }
  // The entry pointer stays valid across the stripe boundary: an entry is
  // recycled only when its owner list empties, the (e, txn) ownership just
  // added can only be removed by this thread (EraseOwn is owner-thread-
  // only) or by ReleaseAll, which requires the transaction to be finished
  // — and a finished transaction no longer publishes.
  TxnStripe& ts = txn_stripes_[TxnStripeOf(txn)];
  {
    std::lock_guard<std::mutex> guard(ts.mu);
    OwnerLink* link;
    if (ts.free_links != nullptr) {
      link = ts.free_links;
      ts.free_links = link->next;
    } else {
      link = new OwnerLink();
    }
    link->entry = e;
    link->key_stripe = static_cast<uint32_t>(ks);
    OwnerLink*& head = ts.chains[txn];
    link->next = head;
    head = link;
  }
  grants_.fetch_add(1, std::memory_order_relaxed);
}

void SIReadIndex::CollectHolders(TxnId self, const LockKeyView& key,
                                 ConflictBuf* out) const {
  const KeyStripe& stripe = key_stripes_[KeyStripeOf(key.hash)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  const Entry* e = FindLocked(stripe, key);
  if (e == nullptr) return;
  for (TxnId owner : e->owners) {
    if (owner != self) out->push_back(owner);
  }
}

void SIReadIndex::EraseOwn(TxnId txn, const LockKeyView& key) {
  // Quick unsynchronized-path rejection: look the entry up and check the
  // owner under the key stripe alone. The result cannot go stale in the
  // hazardous direction — only this thread removes this txn's ownership
  // (see the threading contract in the header).
  Entry* target = nullptr;
  {
    KeyStripe& stripe = key_stripes_[KeyStripeOf(key.hash)];
    std::lock_guard<std::mutex> guard(stripe.mu);
    target = FindLocked(stripe, key);
    if (target == nullptr) return;
    bool held = false;
    for (TxnId owner : target->owners) {
      if (owner == txn) {
        held = true;
        break;
      }
    }
    if (!held) return;
  }
  // Unlink the ownership record chain-first, entry-second, in the same
  // txn-stripe-before-key-stripe order ReleaseAll uses.
  TxnStripe& ts = txn_stripes_[TxnStripeOf(txn)];
  {
    std::lock_guard<std::mutex> tguard(ts.mu);
    auto it = ts.chains.find(txn);
    assert(it != ts.chains.end());
    OwnerLink** plink = &it->second;
    while (*plink != nullptr && (*plink)->entry != target) {
      plink = &(*plink)->next;
    }
    assert(*plink != nullptr);
    OwnerLink* dead = *plink;
    *plink = dead->next;
    dead->next = ts.free_links;
    ts.free_links = dead;
    if (it->second == nullptr) ts.chains.erase(it);

    KeyStripe& stripe = key_stripes_[KeyStripeOf(key.hash)];
    std::lock_guard<std::mutex> kguard(stripe.mu);
    for (size_t i = 0; i < target->owners.size(); ++i) {
      if (target->owners[i] == txn) {
        target->owners.unordered_erase(i);
        break;
      }
    }
    if (target->owners.empty()) RecycleEntryLocked(stripe, target);
  }
  grants_.fetch_sub(1, std::memory_order_relaxed);
}

void SIReadIndex::ReleaseAll(TxnId txn) {
  TxnStripe& ts = txn_stripes_[TxnStripeOf(txn)];
  uint64_t released = 0;
  {
    std::lock_guard<std::mutex> tguard(ts.mu);
    auto it = ts.chains.find(txn);
    if (it == ts.chains.end()) return;
    OwnerLink* link = it->second;
    ts.chains.erase(it);
    while (link != nullptr) {
      OwnerLink* next = link->next;
      KeyStripe& stripe = key_stripes_[link->key_stripe];
      {
        std::lock_guard<std::mutex> kguard(stripe.mu);
        Entry* e = link->entry;
        for (size_t i = 0; i < e->owners.size(); ++i) {
          if (e->owners[i] == txn) {
            e->owners.unordered_erase(i);
            break;
          }
        }
        if (e->owners.empty()) RecycleEntryLocked(stripe, e);
      }
      link->next = ts.free_links;
      ts.free_links = link;
      ++released;
      link = next;
    }
  }
  if (released > 0) grants_.fetch_sub(released, std::memory_order_relaxed);
}

bool SIReadIndex::Holds(TxnId txn, const LockKeyView& key) const {
  const KeyStripe& stripe = key_stripes_[KeyStripeOf(key.hash)];
  std::lock_guard<std::mutex> guard(stripe.mu);
  const Entry* e = FindLocked(stripe, key);
  if (e == nullptr) return false;
  for (TxnId owner : e->owners) {
    if (owner == txn) return true;
  }
  return false;
}

bool SIReadIndex::HoldsAny(TxnId txn) const {
  const TxnStripe& ts = txn_stripes_[TxnStripeOf(txn)];
  std::lock_guard<std::mutex> guard(ts.mu);
  return ts.chains.count(txn) > 0;
}

size_t SIReadIndex::EntryCount() const {
  size_t total = 0;
  for (const KeyStripe& stripe : key_stripes_) {
    std::lock_guard<std::mutex> guard(stripe.mu);
    total += stripe.entry_count;
  }
  return total;
}

}  // namespace ssidb
