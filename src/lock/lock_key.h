// Lock-key vocabulary shared by the blocking lock table (LockManager) and
// the SIREAD predicate index (SIReadIndex).
//
// Two key representations:
//   LockKey      - owning (std::string key bytes); lives in lock-table and
//                  page-write maps and in per-transaction held lists. The
//                  FNV hash is computed once and cached in the struct
//                  (mutable), so shard routing and the hash-map probe of a
//                  single acquisition hash the bytes exactly once.
//   LockKeyView  - non-owning (Slice key bytes) with a precomputed hash;
//                  the heterogeneous probe type. Read-path lookups build a
//                  view on the caller's stack and never copy key bytes.
// LockKeyHash/LockKeyEq are transparent (C++20 heterogeneous lookup), so
// an unordered_map keyed by LockKey can be probed with a LockKeyView
// without materializing a std::string.
//
// Hash-cache contract: LockKey::cached_hash is a pure function of
// (table, kind, key). It is only ever written while the bytes are stable
// and the key is thread-confined or guarded by its container's mutex
// (executor scratch keys, lock-table shard maps, the page-write map), so
// the lazy fill is race-free. Mutate a reused LockKey only through
// Assign(), which resets the cache.

#ifndef SSIDB_LOCK_LOCK_KEY_H_
#define SSIDB_LOCK_LOCK_KEY_H_

#include <cstdint>
#include <string>

#include "src/common/slice.h"
#include "src/storage/table.h"
#include "src/storage/version.h"

namespace ssidb {

enum class LockMode : uint8_t {
  kShared = 1,
  kExclusive = 2,
  kSIRead = 4,
};

/// What a lock protects.
enum class LockKind : uint8_t {
  kRow = 0,
  /// The open interval below `key` (insert/delete phantoms, Figs 3.6/3.7).
  kGap = 1,
  /// The gap above the largest key of the table (next(x) when x is last).
  kSupremum = 2,
  /// A whole page bucket (Berkeley DB granularity, §4.1).
  kPage = 3,
};

/// FNV-1a over (table, kind, key bytes). The single hash function of both
/// key representations; LockKeyView carries its result so one acquisition
/// hashes the bytes exactly once.
inline uint64_t HashLockKeyBytes(TableId table, LockKind kind,
                                 const char* key, size_t key_size) {
  uint64_t h = 1469598103934665603ULL;
  auto feed = [&h](const char* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(p[i]);
      h *= 1099511628211ULL;
    }
  };
  feed(reinterpret_cast<const char*>(&table), sizeof(table));
  feed(reinterpret_cast<const char*>(&kind), sizeof(kind));
  feed(key, key_size);
  return h;
}

struct LockKey {
  TableId table = 0;
  LockKind kind = LockKind::kRow;
  std::string key;
  /// Lazily computed by LockKeyHash; 0 means "not yet computed" (FNV-1a
  /// essentially never produces 0 for real inputs; if it did, the only
  /// cost is recomputation). See the header comment for the race-freedom
  /// argument.
  mutable uint64_t cached_hash = 0;

  LockKey() = default;
  LockKey(TableId t, LockKind k, std::string key_in)
      : table(t), kind(k), key(std::move(key_in)) {}

  /// Reuse this key object for different bytes (executor scratch keys);
  /// resets the hash cache. The std::string buffer is reused, so repeated
  /// Assign calls with same-or-shorter keys never allocate.
  void Assign(TableId t, LockKind k, Slice key_in) {
    table = t;
    kind = k;
    key.assign(key_in.data(), key_in.size());
    cached_hash = 0;
  }

  uint64_t Hash() const {
    if (cached_hash == 0) {
      cached_hash = HashLockKeyBytes(table, kind, key.data(), key.size());
    }
    return cached_hash;
  }

  bool operator==(const LockKey& o) const {
    return table == o.table && kind == o.kind && key == o.key;
  }
};

/// Non-owning probe key: Slice over caller-owned bytes + precomputed hash.
/// Build with MakeLockKeyView so the hash always matches LockKey::Hash().
struct LockKeyView {
  TableId table;
  LockKind kind;
  Slice key;
  uint64_t hash;
};

inline LockKeyView MakeLockKeyView(TableId table, LockKind kind, Slice key) {
  return LockKeyView{table, kind, key,
                     HashLockKeyBytes(table, kind, key.data(), key.size())};
}

struct LockKeyHash {
  using is_transparent = void;
  size_t operator()(const LockKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
  size_t operator()(const LockKeyView& v) const {
    return static_cast<size_t>(v.hash);
  }
};

struct LockKeyEq {
  using is_transparent = void;
  bool operator()(const LockKey& a, const LockKey& b) const { return a == b; }
  bool operator()(const LockKey& a, const LockKeyView& b) const {
    return a.table == b.table && a.kind == b.kind &&
           Slice(a.key) == b.key;
  }
  bool operator()(const LockKeyView& a, const LockKey& b) const {
    return (*this)(b, a);
  }
};

}  // namespace ssidb

#endif  // SSIDB_LOCK_LOCK_KEY_H_
