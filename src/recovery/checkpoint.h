// Watermark checkpoints: a serialized image of every table's newest
// committed version at a TxnManager stable watermark.
//
// Why the watermark: every commit with commit_ts <= stable_ts() has fully
// stamped its versions before the watermark advanced past it (txn_manager.h),
// so a sweep that filters versions by commit_ts <= watermark observes a
// transaction-consistent cut without stopping writers — the sweep rides
// Table::ForEachChain, which holds one shard latch at a time.
//
// Write protocol: serialize into checkpoint-<watermark>.tmp, fsync, rename
// to checkpoint-<watermark>.ckpt, fsync the directory. A crash mid-write
// leaves a .tmp (ignored) or nothing; a checkpoint is only consulted by
// recovery if its CRC footer and trailer magic validate, so a torn rename
// target can never be mistaken for a complete image.
//
// File format (all integers big-endian):
//   magic8 "SSIDBCK1"
//   u64 watermark
//   u32 table_count
//   table_count x { u32 id, len-prefixed name, u64 entry_count,
//                   entry_count x { lp key, lp value, u64 commit_ts } }
//   u32 crc                 CRC32C of every byte above
//   magic8 "SSIDBEND"
//
// Tables appear in id order and ids are dense, so re-creating them in file
// order on an empty catalog reproduces the original id assignment — which
// WAL commit records (keyed by table id) rely on. Keys whose newest
// committed version at the watermark is a tombstone are omitted: recovery
// starts no snapshots older than the watermark, so the deleted key is
// simply absent.

#ifndef SSIDB_RECOVERY_CHECKPOINT_H_
#define SSIDB_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/catalog.h"

namespace ssidb::recovery {

struct CheckpointEntry {
  std::string key;
  std::string value;
  Timestamp commit_ts = 0;
};

struct CheckpointTable {
  TableId id = 0;
  std::string name;
  std::vector<CheckpointEntry> entries;
};

/// A parsed checkpoint image.
struct CheckpointData {
  Timestamp watermark = 0;
  std::vector<CheckpointTable> tables;
};

/// File name for a checkpoint at `watermark`.
std::string CheckpointFileName(Timestamp watermark);

/// Sweep `catalog` at `watermark` and durably write the image into `dir`
/// (created if missing). On success older checkpoint files are deleted —
/// the new image supersedes them. `fsync=false` is test-only.
Status WriteCheckpoint(const Catalog& catalog, Timestamp watermark,
                       const std::string& dir, bool fsync);

/// Load the newest *complete* checkpoint in `dir` into `out`. Incomplete
/// or damaged files (bad magic, CRC, or truncation) are skipped in favour
/// of the next-newest. *found=false with OK status when none qualifies.
Status LoadLatestCheckpoint(const std::string& dir, CheckpointData* out,
                            bool* found);

}  // namespace ssidb::recovery

#endif  // SSIDB_RECOVERY_CHECKPOINT_H_
