// Watermark checkpoints: serialized images of table state at a TxnManager
// stable watermark — a full *base* image of every table's newest committed
// version, or an incremental *delta* image holding only what committed in
// a window (prev_watermark, watermark] since the previous checkpoint.
//
// Why the watermark: every commit with commit_ts <= stable_ts() has fully
// stamped its versions before the watermark advanced past it (txn_manager.h),
// so a sweep that filters versions by commit_ts <= watermark observes a
// transaction-consistent cut without stopping writers — the sweep rides
// Table::ForEachChain, which holds one shard latch at a time. The delta
// sweep additionally rides the per-shard max-commit-ts hint: shards no
// commit touched past prev_watermark are skipped without taking their
// latch, so a delta over a mostly-cold table is O(touched), not O(table).
//
// Write protocol (both kinds): serialize into <name>.tmp, fsync, rename,
// fsync the directory. A crash mid-write leaves a .tmp (ignored) or
// nothing; an image is only consulted by recovery if its CRC footer and
// trailer magic validate, so a torn rename target can never be mistaken
// for a complete image. Writing a base supersedes everything older: older
// bases and *all* delta files are deleted (a fresh chain starts).
//
// Base file "checkpoint-<wm>.ckpt" (all integers big-endian):
//   magic8 "SSIDBCK1"
//   u64 watermark
//   u32 table_count
//   table_count x { u32 id, len-prefixed name, u64 entry_count,
//                   entry_count x { lp key, lp value, u64 commit_ts } }
//   u32 crc                 CRC32C of every byte above
//   magic8 "SSIDBEND"
//
// Delta file "delta-<prev>-<wm>.ckpt": as above with magic "SSIDBDL1", a
// u64 prev_watermark between the magic and the watermark, and a u8
// tombstone flag after each entry's commit_ts. Bases omit keys whose
// newest version at the watermark is a tombstone (recovery starts no
// snapshot older than the watermark, so absence == deleted); deltas must
// record tombstones explicitly — the key may exist in the base image they
// patch. Every delta lists every table (ids stay dense for replay) even
// when a table contributes no entries, so tables created inside the window
// survive through the chain.
//
// Tables appear in id order and ids are dense, so re-creating them in file
// order on an empty catalog reproduces the original id assignment — which
// WAL commit records (keyed by table id) rely on.

#ifndef SSIDB_RECOVERY_CHECKPOINT_H_
#define SSIDB_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/env.h"
#include "src/storage/catalog.h"

namespace ssidb::recovery {

struct CheckpointEntry {
  std::string key;
  std::string value;
  Timestamp commit_ts = 0;
  /// Delta images only: the key's newest version in the window is a
  /// delete — recovery installs a tombstone over the base state.
  bool tombstone = false;
};

struct CheckpointTable {
  TableId id = 0;
  std::string name;
  std::vector<CheckpointEntry> entries;
};

/// A parsed checkpoint image (base or delta).
struct CheckpointData {
  /// 0 for a base image; for a delta, the watermark of the chain link it
  /// patches (the sweep covered (prev_watermark, watermark]).
  Timestamp prev_watermark = 0;
  Timestamp watermark = 0;
  std::vector<CheckpointTable> tables;
};

/// File name for a base checkpoint at `watermark`.
std::string CheckpointFileName(Timestamp watermark);
/// File name for a delta covering (prev, watermark].
std::string DeltaCheckpointFileName(Timestamp prev, Timestamp watermark);
/// Parse a delta file name back; false for any other shape.
bool ParseDeltaCheckpointFileName(const std::string& name, Timestamp* prev,
                                  Timestamp* watermark);

/// What WriteCheckpoint produced (sizing counters for stats/benches, and
/// the table count a base captured — the create-watermark input for WAL
/// segment GC).
struct CheckpointWriteResult {
  uint64_t bytes = 0;
  uint64_t entries = 0;
  uint32_t table_count = 0;
};

/// Sweep `catalog` at `watermark` and durably write an image into `dir`
/// (created if missing). With prev_watermark == 0 this is a full base
/// image and older checkpoint files (bases and deltas) are deleted — the
/// new image supersedes them. With prev_watermark > 0 a delta image
/// covering (prev_watermark, watermark] is written and nothing is deleted
/// (the chain grows). `fsync=false` is test-only. `result` may be null.
/// On a write/rename failure (e.g. ENOSPC) the partial .tmp is removed
/// (best effort) and the previous checkpoint chain is left untouched, so
/// it stays fully loadable and the next attempt resumes cleanly.
Status WriteCheckpoint(const Catalog& catalog, Timestamp watermark,
                       Timestamp prev_watermark, const std::string& dir,
                       bool fsync, CheckpointWriteResult* result = nullptr,
                       io::Env* env = nullptr);

/// Load the newest *complete* base checkpoint in `dir` into `out`.
/// Incomplete or damaged files (bad magic, CRC, or truncation) are skipped
/// in favour of the next-newest. *found=false with OK status when none
/// qualifies.
Status LoadLatestCheckpoint(const std::string& dir, CheckpointData* out,
                            bool* found);

/// The newest complete base plus its longest complete delta chain.
struct LoadedCheckpointChain {
  CheckpointData base;
  /// Deltas in application order (each link's prev_watermark equals the
  /// previous link's watermark, starting from the base).
  std::vector<CheckpointData> deltas;
  /// A chain link existed on disk but was damaged: the usable prefix ends
  /// before it (recovery falls back to the older consistent cut and lets
  /// WAL replay cover the rest).
  bool truncated = false;
  /// Watermark of the last usable link (base watermark when deltas is
  /// empty): the cut WAL replay resumes after.
  Timestamp tip = 0;
};

/// Load the newest complete base and follow its delta chain, skipping
/// damaged links (the chain is cut at the first unusable link). When
/// several bases exist, damaged newer ones fall back to older ones.
/// *found=false with OK status when no complete base exists.
Status LoadCheckpointChain(const std::string& dir, LoadedCheckpointChain* out,
                           bool* found);

}  // namespace ssidb::recovery

#endif  // SSIDB_RECOVERY_CHECKPOINT_H_
