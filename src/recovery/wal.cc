#include "src/recovery/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>

#include "src/recovery/fs_util.h"

namespace ssidb::recovery {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";

std::atomic<uint64_t> g_scan_calls{0};

}  // namespace

std::string WalSegmentName(uint64_t seq) {
  return NumberedFileName(kSegmentPrefix, seq, kSegmentSuffix);
}

bool ParseWalSegmentSeq(const std::string& path, uint64_t* seq) {
  return ParseNumberedFileName(fs::path(path).filename().string(),
                               kSegmentPrefix, kSegmentSuffix, seq);
}

uint64_t ScanWalSegmentCalls() {
  return g_scan_calls.load(std::memory_order_relaxed);
}

WalFrame MakeWalFrame(const LogRecord& record) {
  WalFrame frame;
  frame.bytes = record.Encode();
  frame.type = record.type;
  frame.commit_ts = record.commit_ts;
  if (record.type == LogRecordType::kTableCreate && !record.redo.empty()) {
    frame.table_id = record.redo[0].table;
  }
  return frame;
}

void AccumulateSegmentMeta(LogRecordType type, Timestamp commit_ts,
                           uint32_t table_id, WalSegmentMeta* meta) {
  ++meta->record_count;
  if (type == LogRecordType::kCommit) {
    if (meta->min_commit_ts == 0 || commit_ts < meta->min_commit_ts) {
      meta->min_commit_ts = commit_ts;
    }
    if (commit_ts > meta->max_commit_ts) meta->max_commit_ts = commit_ts;
  } else if (type == LogRecordType::kTableCreate) {
    if (!meta->has_table_create || table_id > meta->max_table_id_created) {
      meta->max_table_id_created = table_id;
    }
    meta->has_table_create = true;
  }
}

Status ListWalSegments(const std::string& dir,
                       std::vector<std::string>* paths) {
  paths->clear();
  std::error_code ec;
  if (!fs::exists(dir, ec)) return Status::OK();
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    const std::string name = entry.path().filename().string();
    if (ParseNumberedFileName(name, kSegmentPrefix, kSegmentSuffix, &seq)) {
      found.emplace_back(seq, entry.path().string());
    }
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(found.begin(), found.end());
  for (auto& [seq, path] : found) paths->push_back(std::move(path));
  return Status::OK();
}

Status ScanWalSegment(const std::string& path, WalScanResult* out,
                      io::Env* env) {
  g_scan_calls.fetch_add(1, std::memory_order_relaxed);
  out->records.clear();
  out->tail = Status::OK();
  std::string contents;
  Status st = ReadFileToString(path, &contents, env);
  if (!st.ok()) return st;
  out->file_bytes = contents.size();
  size_t offset = 0;
  while (offset < contents.size()) {
    LogRecord record;
    st = LogRecord::DecodeFrom(contents, &offset, &record);
    if (!st.ok()) {
      out->tail = st;
      break;
    }
    out->records.push_back(std::move(record));
  }
  out->valid_bytes = offset;
  return Status::OK();
}

WalWriter::WalWriter(std::string dir, uint64_t segment_bytes, bool fsync,
                     io::Env* env)
    : dir_(std::move(dir)),
      segment_bytes_(segment_bytes == 0 ? 1 : segment_bytes),
      fsync_(fsync),
      env_(io::ResolveEnv(env)) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Never fsync a poisoned descriptor: after a failed fsync the kernel
    // may have dropped the dirty pages while marking them clean, so a
    // "successful" retry would report durability that does not exist.
    if (fsync_ && io_status_.ok()) env_->Fsync(fd_);
    env_->Close(fd_);
  }
}

Status WalWriter::EnsureOpen() {
  if (opened_) return Status::OK();
  Status st_dir = env_->CreateDirs(dir_);
  if (!st_dir.ok()) return st_dir;
  // Start one past the highest existing segment: a pre-crash segment may
  // end in a torn frame, and appending after it would bury the tear
  // mid-segment where recovery must treat it as corruption.
  std::vector<std::string> existing;
  Status st = ListWalSegments(dir_, &existing);
  if (!st.ok()) return st;
  next_seq_ = 1;
  if (!existing.empty()) {
    uint64_t last = 0;
    ParseNumberedFileName(fs::path(existing.back()).filename().string(),
                          kSegmentPrefix, kSegmentSuffix, &last);
    next_seq_ = last + 1;
  }
  opened_ = true;
  return RotateSegment();
}

void WalWriter::PublishCurrentMeta() {
  std::lock_guard<std::mutex> guard(meta_mu_);
  meta_[current_meta_.seq] = current_meta_;
}

Status WalWriter::RotateSegment() {
  if (fd_ >= 0) {
    if (fsync_ && env_->Fsync(fd_) != 0) return ErrnoStatus("fsync", dir_);
    env_->Close(fd_);
    fd_ = -1;
    // Seal the segment's registry entry *before* the next segment's file
    // exists, so any directory listing that sees the newer name can trust
    // this one's metadata (the invariant checkpoint GC relies on).
    PublishCurrentMeta();
  }
  const std::string path =
      (fs::path(dir_) / WalSegmentName(next_seq_)).string();
  fd_ = env_->Open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) return ErrnoStatus("create", path);
  current_seq_ = next_seq_;
  ++next_seq_;
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  segment_offset_ = 0;
  current_meta_ = WalSegmentMeta{};
  current_meta_.seq = current_seq_;
  PublishCurrentMeta();  // The open segment is listed, even while empty.
  // Make the new name itself durable before any record relies on it.
  return fsync_ ? SyncDir(dir_, env_) : Status::OK();
}

Status WalWriter::AppendBatch(const std::vector<WalFrame>& frames) {
  // Sticky failure: once any write or fsync has failed, the segment may
  // end in a torn frame, and durability of earlier "flushed" bytes is
  // unknowable. Refuse all further appends (see header).
  if (!io_status_.ok()) return io_status_;
  Status st = EnsureOpen();
  if (!st.ok()) return st;
  for (const WalFrame& frame : frames) {
    if (segment_offset_ >= segment_bytes_) {
      st = RotateSegment();
      if (!st.ok()) return io_status_ = st;
    }
    // Accumulated lock-free; counted even if the write below fails —
    // overstating a segment is the conservative direction for GC.
    AccumulateSegmentMeta(frame.type, frame.commit_ts, frame.table_id,
                          &current_meta_);
    size_t written = 0;
    while (written < frame.bytes.size()) {
      const ssize_t n = env_->Write(fd_, frame.bytes.data() + written,
                                    frame.bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return io_status_ = ErrnoStatus("write", dir_);
      }
      written += static_cast<size_t>(n);
    }
    segment_offset_ += frame.bytes.size();
    bytes_written_.fetch_add(frame.bytes.size(), std::memory_order_relaxed);
  }
  PublishCurrentMeta();
  if (fsync_ && env_->Fsync(fd_) != 0) {
    return io_status_ = ErrnoStatus("fsync", dir_);
  }
  return Status::OK();
}

void WalWriter::SeedSegmentMeta(const std::vector<WalSegmentMeta>& metas) {
  std::lock_guard<std::mutex> guard(meta_mu_);
  for (const WalSegmentMeta& m : metas) {
    meta_.emplace(m.seq, m);  // Keep any entry this writer already owns.
  }
}

std::map<uint64_t, WalSegmentMeta> WalWriter::SegmentMetadata() const {
  std::lock_guard<std::mutex> guard(meta_mu_);
  return meta_;
}

void WalWriter::ForgetSegment(uint64_t seq) {
  std::lock_guard<std::mutex> guard(meta_mu_);
  meta_.erase(seq);
}

}  // namespace ssidb::recovery
