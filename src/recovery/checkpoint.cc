#include "src/recovery/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/common/crc32c.h"
#include "src/common/encoding.h"
#include "src/recovery/fs_util.h"

namespace ssidb::recovery {

namespace fs = std::filesystem;

namespace {

constexpr char kHeaderMagic[8] = {'S', 'S', 'I', 'D', 'B', 'C', 'K', '1'};
constexpr char kDeltaMagic[8] = {'S', 'S', 'I', 'D', 'B', 'D', 'L', '1'};
constexpr char kTrailerMagic[8] = {'S', 'S', 'I', 'D', 'B', 'E', 'N', 'D'};
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kDeltaPrefix[] = "delta-";
constexpr char kCheckpointSuffix[] = ".ckpt";
constexpr size_t kNumberDigits = 20;  ///< NumberedFileName's fixed width.

/// The sweep's reader id: matches no version creator (real ids come from
/// the clock, recovered versions use 0), so VersionChain::Read never takes
/// the own-write path.
constexpr TxnId kSweepReader = UINT64_MAX;

/// Parse a fully-read checkpoint file, base or delta (told apart by the
/// header magic). Any defect => non-OK (the caller falls back).
Status ParseCheckpoint(const std::string& contents, CheckpointData* out) {
  const size_t footer = sizeof(uint32_t) + sizeof(kTrailerMagic);
  if (contents.size() < sizeof(kHeaderMagic) + footer) {
    return Status::Truncated("checkpoint too small");
  }
  bool is_delta = false;
  if (std::memcmp(contents.data(), kHeaderMagic, sizeof(kHeaderMagic)) == 0) {
    is_delta = false;
  } else if (std::memcmp(contents.data(), kDeltaMagic, sizeof(kDeltaMagic)) ==
             0) {
    is_delta = true;
  } else {
    return Status::Corruption("bad checkpoint magic");
  }
  if (std::memcmp(contents.data() + contents.size() - sizeof(kTrailerMagic),
                  kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
    return Status::Truncated("checkpoint trailer missing");
  }
  const size_t body_size = contents.size() - footer;
  const Slice body(contents.data(), body_size);
  size_t off = body_size;
  uint32_t stored_crc = 0;
  if (!GetBig32(contents, &off, &stored_crc)) {
    return Status::Truncated("checkpoint crc missing");
  }
  if (Crc32c(body) != stored_crc) {
    return Status::Corruption("checkpoint crc mismatch");
  }
  off = sizeof(kHeaderMagic);
  uint64_t prev_watermark = 0;
  uint64_t watermark = 0;
  uint32_t table_count = 0;
  if (is_delta && !GetBig64(body, &off, &prev_watermark)) {
    return Status::Corruption("delta header short");
  }
  if (!GetBig64(body, &off, &watermark) ||
      !GetBig32(body, &off, &table_count)) {
    return Status::Corruption("checkpoint header short");
  }
  CheckpointData data;
  data.prev_watermark = prev_watermark;
  data.watermark = watermark;
  data.tables.reserve(table_count);
  for (uint32_t t = 0; t < table_count; ++t) {
    CheckpointTable table;
    uint64_t entry_count = 0;
    if (!GetBig32(body, &off, &table.id) ||
        !GetLengthPrefixed(body, &off, &table.name) ||
        !GetBig64(body, &off, &entry_count)) {
      return Status::Corruption("checkpoint table header short");
    }
    table.entries.reserve(entry_count);
    for (uint64_t i = 0; i < entry_count; ++i) {
      CheckpointEntry e;
      if (!GetLengthPrefixed(body, &off, &e.key) ||
          !GetLengthPrefixed(body, &off, &e.value) ||
          !GetBig64(body, &off, &e.commit_ts)) {
        return Status::Corruption("checkpoint entry short");
      }
      if (is_delta) {
        if (off + 1 > body.size()) {
          return Status::Corruption("delta tombstone short");
        }
        e.tombstone = body.data()[off] != 0;
        ++off;
      }
      table.entries.push_back(std::move(e));
    }
    data.tables.push_back(std::move(table));
  }
  if (off != body_size) {
    return Status::Corruption("trailing bytes in checkpoint");
  }
  *out = std::move(data);
  return Status::OK();
}

Status ReadAndParse(const std::string& path, CheckpointData* out) {
  std::string contents;
  Status st = ReadFileToString(path, &contents);
  if (!st.ok()) return st;
  return ParseCheckpoint(contents, out);
}

}  // namespace

std::string CheckpointFileName(Timestamp watermark) {
  return NumberedFileName(kCheckpointPrefix, watermark, kCheckpointSuffix);
}

std::string DeltaCheckpointFileName(Timestamp prev, Timestamp watermark) {
  // "delta-<prev>-<wm>.ckpt": reuse the 20-digit shape for both numbers.
  std::string name = NumberedFileName(kDeltaPrefix, prev, "-");
  name += NumberedFileName("", watermark, kCheckpointSuffix);
  return name;
}

bool ParseDeltaCheckpointFileName(const std::string& name, Timestamp* prev,
                                  Timestamp* watermark) {
  const size_t prefix_len = sizeof(kDeltaPrefix) - 1;
  const size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
  const size_t want = prefix_len + kNumberDigits + 1 + kNumberDigits +
                      suffix_len;
  if (name.size() != want) return false;
  if (name.compare(0, prefix_len, kDeltaPrefix) != 0) return false;
  if (name[prefix_len + kNumberDigits] != '-') return false;
  // Reuse the numbered-name parser on each half.
  const std::string first = name.substr(0, prefix_len + kNumberDigits) + "-";
  if (!ParseNumberedFileName(first, kDeltaPrefix, "-", prev)) return false;
  const std::string second = name.substr(prefix_len + kNumberDigits + 1);
  return ParseNumberedFileName(second, "", kCheckpointSuffix, watermark);
}

Status WriteCheckpoint(const Catalog& catalog, Timestamp watermark,
                       Timestamp prev_watermark, const std::string& dir,
                       bool do_fsync, CheckpointWriteResult* result,
                       io::Env* env) {
  env = io::ResolveEnv(env);
  std::error_code ec;
  Status mkdir_st = env->CreateDirs(dir);
  if (!mkdir_st.ok()) return mkdir_st;

  const bool is_delta = prev_watermark != 0;
  CheckpointWriteResult local;
  CheckpointWriteResult& res = result != nullptr ? *result : local;
  res = CheckpointWriteResult{};

  std::string image;
  if (is_delta) {
    image.append(kDeltaMagic, sizeof(kDeltaMagic));
    PutBig64(&image, prev_watermark);
  } else {
    image.append(kHeaderMagic, sizeof(kHeaderMagic));
  }
  PutBig64(&image, watermark);
  const uint32_t table_count = static_cast<uint32_t>(catalog.table_count());
  PutBig32(&image, table_count);
  for (TableId id = 0; id < table_count; ++id) {
    Table* table = catalog.table(id);
    PutBig32(&image, id);
    PutLengthPrefixed(&image, table->name());
    // Entry count precedes the entries; collect first (the table keeps
    // serving reads and writes — only one shard latch is shared at a time).
    std::string entries;
    uint64_t entry_count = 0;
    std::string value;
    const auto sweep = [&](const std::string& key, VersionChain* chain) {
      const ReadResult rr = chain->Read(kSweepReader, watermark, &value);
      // version_cts is the commit timestamp of the newest version visible
      // at the watermark — set for tombstones too, 0 when nothing is
      // visible yet.
      if (rr.version_cts == 0) return;
      if (is_delta) {
        if (rr.version_cts <= prev_watermark) return;  // In the base cut.
      } else if (!rr.found) {
        return;  // Base images omit tombstoned keys: absence == deleted.
      }
      PutLengthPrefixed(&entries, key);
      PutLengthPrefixed(&entries, rr.found ? value : std::string());
      PutBig64(&entries, rr.version_cts);
      if (is_delta) entries.push_back(rr.found ? 0 : 1);
      ++entry_count;
    };
    if (is_delta) {
      // Filtered sweep: shards whose max-commit-ts hint is at or below
      // prev_watermark are skipped without taking their latch.
      table->ForEachChain(prev_watermark, sweep);
    } else {
      table->ForEachChain(sweep);
    }
    PutBig64(&image, entry_count);
    image += entries;
    res.entries += entry_count;
  }
  PutBig32(&image, Crc32c(image));
  image.append(kTrailerMagic, sizeof(kTrailerMagic));
  res.bytes = image.size();
  res.table_count = table_count;

  const std::string file_name =
      is_delta ? DeltaCheckpointFileName(prev_watermark, watermark)
               : CheckpointFileName(watermark);
  const fs::path final_path = fs::path(dir) / file_name;
  const fs::path tmp_path = final_path.string() + ".tmp";
  Status st = WriteFileDurably(tmp_path.string(), image, do_fsync, env);
  if (!st.ok()) {
    // ENOSPC/EIO mid-image: drop the partial .tmp so the directory holds
    // only the previous (still loadable) chain, and return the failure —
    // the next checkpoint attempt starts from scratch.
    env->RemoveFile(tmp_path.string());
    return st;
  }
  st = env->Rename(tmp_path.string(), final_path.string());
  if (!st.ok()) {
    env->RemoveFile(tmp_path.string());
    return st;
  }
  if (do_fsync) {
    st = SyncDir(dir, env);
    if (!st.ok()) return st;
  }
  if (is_delta) return Status::OK();  // The chain grows; nothing to GC.

  // A new base supersedes every older base and the whole delta chain (its
  // links all end at or below this watermark); drop them, along with any
  // .tmp a crashed earlier attempt stranded (ours was just renamed away).
  // Best effort.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    Timestamp wm = 0, prev = 0;
    if (ParseNumberedFileName(name, kCheckpointPrefix, kCheckpointSuffix,
                              &wm) &&
        wm < watermark) {
      fs::remove(entry.path(), ec);
    } else if (ParseDeltaCheckpointFileName(name, &prev, &wm) &&
               wm <= watermark) {
      fs::remove(entry.path(), ec);
    } else if ((name.rfind(kCheckpointPrefix, 0) == 0 ||
                name.rfind(kDeltaPrefix, 0) == 0) &&
               name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
    }
  }
  return Status::OK();
}

Status LoadLatestCheckpoint(const std::string& dir, CheckpointData* out,
                            bool* found) {
  *found = false;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return Status::OK();
  std::vector<std::pair<Timestamp, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    Timestamp wm = 0;
    if (ParseNumberedFileName(entry.path().filename().string(),
                              kCheckpointPrefix, kCheckpointSuffix, &wm)) {
      candidates.emplace_back(wm, entry.path().string());
    }
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(candidates.rbegin(), candidates.rend());
  for (const auto& [wm, path] : candidates) {
    CheckpointData data;
    if (ReadAndParse(path, &data).ok()) {
      *out = std::move(data);
      *found = true;
      return Status::OK();
    }
    // Incomplete/corrupt image (e.g. crash mid-checkpoint): fall back.
  }
  return Status::OK();
}

Status LoadCheckpointChain(const std::string& dir, LoadedCheckpointChain* out,
                           bool* found) {
  *out = LoadedCheckpointChain{};
  Status st = LoadLatestCheckpoint(dir, &out->base, found);
  if (!st.ok() || !*found) return st;
  out->tip = out->base.watermark;

  struct DeltaFile {
    Timestamp prev = 0;
    Timestamp watermark = 0;
    std::string path;
  };
  std::vector<DeltaFile> links;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    DeltaFile link;
    if (ParseDeltaCheckpointFileName(entry.path().filename().string(),
                                     &link.prev, &link.watermark)) {
      link.path = entry.path().string();
      links.push_back(std::move(link));
    }
  }
  // Follow the chain from the base. Several links may share a prev (a
  // damaged link from an earlier session plus its replacement): prefer the
  // newest watermark that parses; if links exist but none parse, the chain
  // is cut there and WAL replay covers the remainder.
  std::sort(links.begin(), links.end(), [](const DeltaFile& a,
                                           const DeltaFile& b) {
    return a.watermark > b.watermark;
  });
  for (;;) {
    bool saw_candidate = false;
    bool advanced = false;
    for (const DeltaFile& link : links) {
      if (link.prev != out->tip) continue;
      // The engine only writes forward links (watermark > prev); a
      // non-advancing link can only come from foreign/copied files and
      // would cycle the walk forever.
      if (link.watermark <= out->tip) continue;
      saw_candidate = true;
      CheckpointData data;
      if (!ReadAndParse(link.path, &data).ok()) continue;
      if (data.prev_watermark != link.prev ||
          data.watermark != link.watermark) {
        continue;  // Name/content mismatch: treat as damaged.
      }
      out->deltas.push_back(std::move(data));
      out->tip = link.watermark;
      advanced = true;
      break;
    }
    if (!advanced) {
      out->truncated = saw_candidate;
      break;
    }
  }
  return Status::OK();
}

}  // namespace ssidb::recovery
