#include "src/recovery/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/common/crc32c.h"
#include "src/common/encoding.h"
#include "src/recovery/fs_util.h"

namespace ssidb::recovery {

namespace fs = std::filesystem;

namespace {

constexpr char kHeaderMagic[8] = {'S', 'S', 'I', 'D', 'B', 'C', 'K', '1'};
constexpr char kTrailerMagic[8] = {'S', 'S', 'I', 'D', 'B', 'E', 'N', 'D'};
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".ckpt";

/// The sweep's reader id: matches no version creator (real ids come from
/// the clock, recovered versions use 0), so VersionChain::Read never takes
/// the own-write path.
constexpr TxnId kSweepReader = UINT64_MAX;

/// Parse a fully-read checkpoint file. Any defect => non-OK (the caller
/// falls back to an older checkpoint).
Status ParseCheckpoint(const std::string& contents, CheckpointData* out) {
  const size_t footer = sizeof(uint32_t) + sizeof(kTrailerMagic);
  if (contents.size() < sizeof(kHeaderMagic) + footer) {
    return Status::Truncated("checkpoint too small");
  }
  if (std::memcmp(contents.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (std::memcmp(contents.data() + contents.size() - sizeof(kTrailerMagic),
                  kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
    return Status::Truncated("checkpoint trailer missing");
  }
  const size_t body_size = contents.size() - footer;
  const Slice body(contents.data(), body_size);
  size_t off = body_size;
  uint32_t stored_crc = 0;
  if (!GetBig32(contents, &off, &stored_crc)) {
    return Status::Truncated("checkpoint crc missing");
  }
  if (Crc32c(body) != stored_crc) {
    return Status::Corruption("checkpoint crc mismatch");
  }
  off = sizeof(kHeaderMagic);
  uint64_t watermark = 0;
  uint32_t table_count = 0;
  if (!GetBig64(body, &off, &watermark) ||
      !GetBig32(body, &off, &table_count)) {
    return Status::Corruption("checkpoint header short");
  }
  CheckpointData data;
  data.watermark = watermark;
  data.tables.reserve(table_count);
  for (uint32_t t = 0; t < table_count; ++t) {
    CheckpointTable table;
    uint64_t entry_count = 0;
    if (!GetBig32(body, &off, &table.id) ||
        !GetLengthPrefixed(body, &off, &table.name) ||
        !GetBig64(body, &off, &entry_count)) {
      return Status::Corruption("checkpoint table header short");
    }
    table.entries.reserve(entry_count);
    for (uint64_t i = 0; i < entry_count; ++i) {
      CheckpointEntry e;
      if (!GetLengthPrefixed(body, &off, &e.key) ||
          !GetLengthPrefixed(body, &off, &e.value) ||
          !GetBig64(body, &off, &e.commit_ts)) {
        return Status::Corruption("checkpoint entry short");
      }
      table.entries.push_back(std::move(e));
    }
    data.tables.push_back(std::move(table));
  }
  if (off != body_size) {
    return Status::Corruption("trailing bytes in checkpoint");
  }
  *out = std::move(data);
  return Status::OK();
}

}  // namespace

std::string CheckpointFileName(Timestamp watermark) {
  return NumberedFileName(kCheckpointPrefix, watermark, kCheckpointSuffix);
}

Status WriteCheckpoint(const Catalog& catalog, Timestamp watermark,
                       const std::string& dir, bool do_fsync) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir " + dir + ": " + ec.message());

  std::string image;
  image.append(kHeaderMagic, sizeof(kHeaderMagic));
  PutBig64(&image, watermark);
  const uint32_t table_count = static_cast<uint32_t>(catalog.table_count());
  PutBig32(&image, table_count);
  for (TableId id = 0; id < table_count; ++id) {
    Table* table = catalog.table(id);
    PutBig32(&image, id);
    PutLengthPrefixed(&image, table->name());
    // Entry count precedes the entries; collect first (the table keeps
    // serving reads and writes — only one shard latch is shared at a time).
    std::string entries;
    uint64_t entry_count = 0;
    std::string value;
    table->ForEachChain([&](const std::string& key, VersionChain* chain) {
      const ReadResult rr = chain->Read(kSweepReader, watermark, &value);
      if (!rr.found) return;  // Absent or tombstone at the watermark.
      PutLengthPrefixed(&entries, key);
      PutLengthPrefixed(&entries, value);
      PutBig64(&entries, rr.version_cts);
      ++entry_count;
    });
    PutBig64(&image, entry_count);
    image += entries;
  }
  PutBig32(&image, Crc32c(image));
  image.append(kTrailerMagic, sizeof(kTrailerMagic));

  const fs::path final_path = fs::path(dir) / CheckpointFileName(watermark);
  const fs::path tmp_path = final_path.string() + ".tmp";
  Status st = WriteFileDurably(tmp_path.string(), image, do_fsync);
  if (!st.ok()) return st;
  std::error_code rename_ec;
  fs::rename(tmp_path, final_path, rename_ec);
  if (rename_ec) {
    return Status::IOError("rename " + tmp_path.string() + ": " +
                           rename_ec.message());
  }
  if (do_fsync) {
    st = SyncDir(dir);
    if (!st.ok()) return st;
  }

  // The new image supersedes older ones; drop them, along with any .tmp a
  // crashed earlier attempt stranded (ours was just renamed away). Best
  // effort.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    Timestamp wm = 0;
    if (ParseNumberedFileName(name, kCheckpointPrefix, kCheckpointSuffix,
                              &wm) &&
        wm < watermark) {
      fs::remove(entry.path(), ec);
    } else if (name.rfind(kCheckpointPrefix, 0) == 0 &&
               name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
    }
  }
  return Status::OK();
}

Status LoadLatestCheckpoint(const std::string& dir, CheckpointData* out,
                            bool* found) {
  *found = false;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return Status::OK();
  std::vector<std::pair<Timestamp, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    Timestamp wm = 0;
    if (ParseNumberedFileName(entry.path().filename().string(),
                              kCheckpointPrefix, kCheckpointSuffix, &wm)) {
      candidates.emplace_back(wm, entry.path().string());
    }
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(candidates.rbegin(), candidates.rend());
  for (const auto& [wm, path] : candidates) {
    std::string contents;
    if (!ReadFileToString(path, &contents).ok()) continue;
    CheckpointData data;
    if (ParseCheckpoint(contents, &data).ok()) {
      *out = std::move(data);
      *found = true;
      return Status::OK();
    }
    // Incomplete/corrupt image (e.g. crash mid-checkpoint): fall back.
  }
  return Status::OK();
}

}  // namespace ssidb::recovery
