// Crash recovery: rebuild committed state from the newest complete
// checkpoint chain (base image + deltas) plus the WAL segments past it.
//
// Protocol (DB::Open runs this before the engine accepts transactions):
//   1. Load the newest complete base checkpoint, if any, and follow its
//      delta chain as far as every link parses (LoadCheckpointChain): a
//      damaged link cuts the chain there — the older consistent cut is
//      used and WAL replay covers the difference. Tables are recreated in
//      id order and every entry installed with its original commit
//      timestamp (delta tombstones delete over the base state).
//   2. Scan WAL segments in sequence order and replay records:
//        - table creations are applied idempotently (skipped when the name
//          already exists — e.g. it was in the checkpoint);
//        - commit records at or below the checkpoint watermark are skipped
//          (their effects are in the image); newer ones reinstall each
//          redo key's version, again idempotently, so replaying the same
//          log twice — or a log overlapping the checkpoint — is harmless.
//   3. A damaged record at the tail of the *newest* segment is the
//      expected torn write of a crash: replay stops cleanly there.
//      Damage in an older segment cannot come from a torn append (older
//      segments were sealed with an fsync) and fails recovery with
//      kCorruption.
//
// Replay leaves the directory untouched with one exception: a torn tail
// is *truncated* to its clean prefix, so the segment is sealed-clean
// before the new session's writer opens a fresh segment after it (an
// unrepaired tear would sit mid-log and read as corruption one session
// later). The truncation is idempotent — a crash *during* recovery just
// runs recovery again.
//
// After recovery the caller must advance the engine's clock past
// max_commit_ts so new transactions get snapshots that include every
// recovered version (TxnManager::AdvanceClockTo).

#ifndef SSIDB_RECOVERY_RECOVERY_H_
#define SSIDB_RECOVERY_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/env.h"
#include "src/recovery/wal.h"
#include "src/storage/catalog.h"

namespace ssidb::recovery {

struct RecoveryStats {
  bool used_checkpoint = false;
  /// Watermark of the last usable checkpoint-chain link (base watermark
  /// when no delta applied): WAL replay resumes after this cut.
  Timestamp checkpoint_ts = 0;
  /// The base image the chain hangs off: its watermark and the table
  /// count it captured (the create-watermark input for WAL segment GC).
  Timestamp base_watermark = 0;
  uint32_t base_table_count = 0;
  /// Delta links applied on top of the base.
  uint64_t delta_links_applied = 0;
  /// A delta link existed but was damaged; the chain was cut before it.
  bool chain_truncated = false;
  uint64_t segments_scanned = 0;
  uint64_t commit_records_applied = 0;
  uint64_t redo_entries_applied = 0;
  /// Replay ended at a damaged record in the newest segment (the normal
  /// post-crash shape when the flusher died mid-write).
  bool torn_tail = false;
  /// Newest commit timestamp recovered (checkpoint watermark if the WAL
  /// held nothing newer); 0 for a fresh directory.
  Timestamp max_commit_ts = 0;
  /// Per-segment metadata rebuilt from the one obligatory replay scan —
  /// seeded into the engine's WAL writer so checkpoint GC can decide
  /// segment coverage without ever re-reading a segment.
  std::vector<WalSegmentMeta> wal_segments;
};

/// Rebuild `catalog` (which must be empty) from `dir`. A missing or empty
/// directory is a fresh database: OK with zeroed stats. `env` (nullptr =
/// real filesystem) carries segment reads and the torn-tail truncation.
Status Recover(const std::string& dir, Catalog* catalog,
               RecoveryStats* stats, io::Env* env = nullptr);

}  // namespace ssidb::recovery

#endif  // SSIDB_RECOVERY_RECOVERY_H_
