// Filesystem helpers shared by the WAL and checkpoint writers, so the two
// durable artifact types keep identical error handling, fsync discipline
// and file naming. All I/O routes through an io::Env (nullptr = the real
// filesystem) so fault-injection tests can script failures.

#ifndef SSIDB_RECOVERY_FS_UTIL_H_
#define SSIDB_RECOVERY_FS_UTIL_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/io/env.h"

namespace ssidb::recovery {

/// kIOError carrying "<op> <path>: <strerror(errno)>".
Status ErrnoStatus(const char* op, const std::string& path);

/// fsync a directory fd so a created/renamed name is durable.
Status SyncDir(const std::string& dir, io::Env* env = nullptr);

/// Read a whole file into *out. kIOError on open/read failure.
Status ReadFileToString(const std::string& path, std::string* out,
                        io::Env* env = nullptr);

/// Write `contents` to `path` (create/truncate), optionally fsync.
Status WriteFileDurably(const std::string& path, const std::string& contents,
                        bool do_fsync, io::Env* env = nullptr);

/// "<prefix><num, 20 digits><suffix>" — the durable-artifact name shape
/// ("wal-….log", "checkpoint-….ckpt").
std::string NumberedFileName(const char* prefix, uint64_t num,
                             const char* suffix);

/// Parse a NumberedFileName back; false if `name` has a different shape.
bool ParseNumberedFileName(const std::string& name, const char* prefix,
                           const char* suffix, uint64_t* num);

}  // namespace ssidb::recovery

#endif  // SSIDB_RECOVERY_FS_UTIL_H_
