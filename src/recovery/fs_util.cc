#include "src/recovery/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ssidb::recovery {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " " + path + ": " +
                         std::strerror(errno));
}

Status SyncDir(const std::string& dir, io::Env* env) {
  env = io::ResolveEnv(env);
  const int dfd = env->Open(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (dfd < 0) return ErrnoStatus("open dir", dir);
  const int rc = env->Fsync(dfd);
  env->Close(dfd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out,
                        io::Env* env) {
  env = io::ResolveEnv(env);
  out->clear();
  const int fd = env->Open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return ErrnoStatus("open", path);
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = env->Read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      env->Close(fd);
      return ErrnoStatus("read", path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  env->Close(fd);
  return Status::OK();
}

Status WriteFileDurably(const std::string& path, const std::string& contents,
                        bool do_fsync, io::Env* env) {
  env = io::ResolveEnv(env);
  const int fd =
      env->Open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("create", path);
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        env->Write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      env->Close(fd);
      return ErrnoStatus("write", path);
    }
    written += static_cast<size_t>(n);
  }
  if (do_fsync && env->Fsync(fd) != 0) {
    env->Close(fd);
    return ErrnoStatus("fsync", path);
  }
  if (env->Close(fd) != 0) return ErrnoStatus("close", path);
  return Status::OK();
}

std::string NumberedFileName(const char* prefix, uint64_t num,
                             const char* suffix) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", prefix,
                static_cast<unsigned long long>(num), suffix);
  return buf;
}

bool ParseNumberedFileName(const std::string& name, const char* prefix,
                           const char* suffix, uint64_t* num) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *num = v;
  return true;
}

}  // namespace ssidb::recovery
