#include "src/recovery/recovery.h"

#include <filesystem>
#include <vector>

#include "src/recovery/checkpoint.h"
#include "src/recovery/wal.h"

namespace ssidb::recovery {

namespace {

/// Apply one replayed record to the catalog. Returns non-OK only for
/// defects that invalidate the log's internal consistency.
Status ApplyRecord(const LogRecord& record, Timestamp checkpoint_ts,
                   Catalog* catalog, RecoveryStats* stats) {
  if (record.type == LogRecordType::kTableCreate) {
    if (record.redo.size() != 1) {
      return Status::Corruption("table-create record without name entry");
    }
    const RedoEntry& e = record.redo[0];
    TableId existing = 0;
    if (catalog->FindTable(e.key, &existing).ok()) {
      return Status::OK();  // Already present (checkpoint or repeat replay).
    }
    TableId assigned = 0;
    Status st = catalog->CreateTable(e.key, &assigned);
    if (!st.ok()) return st;
    if (assigned != e.table) {
      // Ids are dense and allocated in creation order; a mismatch means
      // the log and the catalog tell different histories.
      return Status::Corruption("table id diverged during replay");
    }
    return Status::OK();
  }
  // Commit record.
  if (record.commit_ts == 0) {
    return Status::Corruption("commit record without timestamp");
  }
  if (record.commit_ts <= checkpoint_ts) {
    return Status::OK();  // Effects already captured by the checkpoint.
  }
  for (const RedoEntry& e : record.redo) {
    Table* table = catalog->table(e.table);
    if (table == nullptr) {
      // The table-create that must precede this commit in the log is
      // missing: the durable prefix ended before this commit's
      // dependencies, so the commit itself was never acknowledged.
      return Status::Corruption("commit references unknown table");
    }
    table->RecoverVersion(e.key, e.value, e.tombstone, record.commit_ts);
    ++stats->redo_entries_applied;
  }
  ++stats->commit_records_applied;
  if (record.commit_ts > stats->max_commit_ts) {
    stats->max_commit_ts = record.commit_ts;
  }
  return Status::OK();
}

}  // namespace

Status Recover(const std::string& dir, Catalog* catalog,
               RecoveryStats* stats) {
  *stats = RecoveryStats{};
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return Status::OK();

  // 1. Checkpoint image.
  CheckpointData checkpoint;
  bool have_checkpoint = false;
  Status st = LoadLatestCheckpoint(dir, &checkpoint, &have_checkpoint);
  if (!st.ok()) return st;
  if (have_checkpoint) {
    for (const CheckpointTable& t : checkpoint.tables) {
      TableId assigned = 0;
      st = catalog->CreateTable(t.name, &assigned);
      if (!st.ok()) return st;
      if (assigned != t.id) {
        return Status::Corruption("checkpoint table ids not dense");
      }
      Table* table = catalog->table(assigned);
      for (const CheckpointEntry& e : t.entries) {
        table->RecoverVersion(e.key, e.value, /*tombstone=*/false,
                              e.commit_ts);
      }
    }
    stats->used_checkpoint = true;
    stats->checkpoint_ts = checkpoint.watermark;
    stats->max_commit_ts = checkpoint.watermark;
  }

  // 2. WAL replay past the checkpoint.
  std::vector<std::string> segments;
  st = ListWalSegments(dir, &segments);
  if (!st.ok()) return st;
  for (size_t i = 0; i < segments.size(); ++i) {
    WalScanResult scan;
    st = ScanWalSegment(segments[i], &scan);
    if (!st.ok()) return st;
    ++stats->segments_scanned;
    for (const LogRecord& record : scan.records) {
      st = ApplyRecord(record, stats->checkpoint_ts, catalog, stats);
      if (!st.ok()) return st;
    }
    if (!scan.tail.ok()) {
      if (i + 1 == segments.size()) {
        // 3. Torn tail of the newest segment: the crash interrupted the
        // flusher mid-frame. Everything before it is the acknowledged
        // prefix; stop cleanly — after cutting the tear off. Without the
        // truncation, the next session's writer would open a fresh
        // segment past this one, leaving the tear mid-log where the
        // session after that must refuse it as corruption.
        stats->torn_tail = true;
        std::error_code trunc_ec;
        std::filesystem::resize_file(segments[i], scan.valid_bytes,
                                     trunc_ec);
        if (trunc_ec) {
          return Status::IOError("truncate torn tail of " + segments[i] +
                                 ": " + trunc_ec.message());
        }
        break;
      }
      return Status::Corruption("damaged record mid-log in " + segments[i] +
                                ": " + scan.tail.ToString());
    }
  }
  return Status::OK();
}

}  // namespace ssidb::recovery
