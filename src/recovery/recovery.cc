#include "src/recovery/recovery.h"

#include <filesystem>
#include <vector>

#include "src/recovery/checkpoint.h"
#include "src/recovery/wal.h"

namespace ssidb::recovery {

namespace {

/// Apply one replayed record to the catalog. Returns non-OK only for
/// defects that invalidate the log's internal consistency.
Status ApplyRecord(const LogRecord& record, Timestamp checkpoint_ts,
                   Catalog* catalog, RecoveryStats* stats) {
  if (record.type == LogRecordType::kTableCreate) {
    if (record.redo.size() != 1) {
      return Status::Corruption("table-create record without name entry");
    }
    const RedoEntry& e = record.redo[0];
    TableId existing = 0;
    if (catalog->FindTable(e.key, &existing).ok()) {
      return Status::OK();  // Already present (checkpoint or repeat replay).
    }
    TableId assigned = 0;
    Status st = catalog->CreateTable(e.key, &assigned);
    if (!st.ok()) return st;
    if (assigned != e.table) {
      // Ids are dense and allocated in creation order; a mismatch means
      // the log and the catalog tell different histories.
      return Status::Corruption("table id diverged during replay");
    }
    return Status::OK();
  }
  // Commit record.
  if (record.commit_ts == 0) {
    return Status::Corruption("commit record without timestamp");
  }
  if (record.commit_ts <= checkpoint_ts) {
    return Status::OK();  // Effects already captured by the checkpoint.
  }
  for (const RedoEntry& e : record.redo) {
    Table* table = catalog->table(e.table);
    if (table == nullptr) {
      // The table-create that must precede this commit in the log is
      // missing: the durable prefix ended before this commit's
      // dependencies, so the commit itself was never acknowledged.
      return Status::Corruption("commit references unknown table");
    }
    table->RecoverVersion(e.key, e.value, e.tombstone, record.commit_ts);
    ++stats->redo_entries_applied;
  }
  ++stats->commit_records_applied;
  if (record.commit_ts > stats->max_commit_ts) {
    stats->max_commit_ts = record.commit_ts;
  }
  return Status::OK();
}

/// Install one checkpoint image (base or delta link) into the catalog.
/// Tables are created idempotently; ids must come out dense and matching.
Status ApplyCheckpointData(const CheckpointData& data, Catalog* catalog) {
  for (const CheckpointTable& t : data.tables) {
    TableId assigned = 0;
    if (catalog->FindTable(t.name, &assigned).ok()) {
      if (assigned != t.id) {
        return Status::Corruption("checkpoint table id diverged");
      }
    } else {
      Status st = catalog->CreateTable(t.name, &assigned);
      if (!st.ok()) return st;
      if (assigned != t.id) {
        return Status::Corruption("checkpoint table ids not dense");
      }
    }
    Table* table = catalog->table(assigned);
    for (const CheckpointEntry& e : t.entries) {
      table->RecoverVersion(e.key, e.value, e.tombstone, e.commit_ts);
    }
  }
  return Status::OK();
}

}  // namespace

Status Recover(const std::string& dir, Catalog* catalog,
               RecoveryStats* stats, io::Env* env) {
  env = io::ResolveEnv(env);
  *stats = RecoveryStats{};
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return Status::OK();

  // 1. Checkpoint chain: the newest complete base plus every delta link
  // that parses. A damaged link cuts the chain — the surviving prefix is
  // still a consistent cut, and WAL replay (which starts after the cut)
  // reinstalls everything the lost links held: segment GC only reclaims
  // up to the *base* watermark, so the WAL past the base is always there.
  LoadedCheckpointChain chain;
  bool have_checkpoint = false;
  Status st = LoadCheckpointChain(dir, &chain, &have_checkpoint);
  if (!st.ok()) return st;
  if (have_checkpoint) {
    st = ApplyCheckpointData(chain.base, catalog);
    if (!st.ok()) return st;
    for (const CheckpointData& delta : chain.deltas) {
      st = ApplyCheckpointData(delta, catalog);
      if (!st.ok()) return st;
      ++stats->delta_links_applied;
    }
    stats->used_checkpoint = true;
    stats->checkpoint_ts = chain.tip;
    stats->base_watermark = chain.base.watermark;
    stats->base_table_count =
        static_cast<uint32_t>(chain.base.tables.size());
    stats->chain_truncated = chain.truncated;
    stats->max_commit_ts = chain.tip;
  }

  // 2. WAL replay past the checkpoint.
  std::vector<std::string> segments;
  st = ListWalSegments(dir, &segments);
  if (!st.ok()) return st;
  for (size_t i = 0; i < segments.size(); ++i) {
    WalScanResult scan;
    st = ScanWalSegment(segments[i], &scan, env);
    if (!st.ok()) return st;
    ++stats->segments_scanned;
    // Rebuild the segment's metadata from this (obligatory) scan, so the
    // engine's checkpoint GC never has to re-read it.
    WalSegmentMeta meta;
    ParseWalSegmentSeq(segments[i], &meta.seq);
    for (const LogRecord& record : scan.records) {
      const uint32_t created_table =
          record.type == LogRecordType::kTableCreate && !record.redo.empty()
              ? record.redo[0].table
              : 0;
      AccumulateSegmentMeta(record.type, record.commit_ts, created_table,
                            &meta);
      st = ApplyRecord(record, stats->checkpoint_ts, catalog, stats);
      if (!st.ok()) return st;
    }
    stats->wal_segments.push_back(meta);
    if (!scan.tail.ok()) {
      if (i + 1 == segments.size()) {
        // 3. Torn tail of the newest segment: the crash interrupted the
        // flusher mid-frame. Everything before it is the acknowledged
        // prefix; stop cleanly — after cutting the tear off. Without the
        // truncation, the next session's writer would open a fresh
        // segment past this one, leaving the tear mid-log where the
        // session after that must refuse it as corruption.
        stats->torn_tail = true;
        Status trunc = env->ResizeFile(segments[i], scan.valid_bytes);
        if (!trunc.ok()) return trunc;
        break;
      }
      return Status::Corruption("damaged record mid-log in " + segments[i] +
                                ": " + scan.tail.ToString());
    }
  }
  return Status::OK();
}

}  // namespace ssidb::recovery
