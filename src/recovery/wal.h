// Segmented, file-backed write-ahead log: the physical layer under
// LogManager's group-commit flusher and the input to crash recovery.
//
// Layout: LogOptions::wal_dir holds segment files named
// wal-<seq, 20 digits>.log. A segment is a plain concatenation of
// LogRecord frames (see log_manager.h for the frame format); the writer
// appends whole frames, fsyncs once per group-commit batch, and rotates to
// a new segment when the current one exceeds the configured size. Segments
// are immutable once rotated away from, so only the newest segment can
// carry a torn tail after a crash.
//
// The writer is lazy: no file (or directory) is created until the first
// append. DB::Open relies on this — recovery scans the directory before
// the engine's own writer has touched it, so the newest on-disk segment is
// exactly the pre-crash tail.
//
// Threading: WalWriter is driven by a single thread (LogManager's
// flusher); readers run before the writer's first append (recovery) or on
// test-owned copies.

#ifndef SSIDB_RECOVERY_WAL_H_
#define SSIDB_RECOVERY_WAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/env.h"
#include "src/txn/log_manager.h"

namespace ssidb::recovery {

/// Name of segment `seq` ("wal-00000000000000000007.log").
std::string WalSegmentName(uint64_t seq);

/// Parse the sequence number out of a segment path or file name; false if
/// the name is not a WAL segment.
bool ParseWalSegmentSeq(const std::string& path, uint64_t* seq);

/// Per-segment metadata, recorded frame-by-frame at append time (and
/// rebuilt by recovery's one obligatory scan for pre-crash segments), so
/// checkpoint-driven WAL GC can decide coverage from counters instead of
/// re-reading candidate segments from disk — O(1) per segment.
///
/// The registry invariant GC relies on: a *sealed* segment's metadata is
/// complete and never understates (the writer publishes a sealing
/// segment's full metadata before the next segment's file is created, so
/// any directory listing that observes a higher-numbered file can trust
/// the lower one's entry). The open segment's entry may trail mid-batch,
/// but GC never touches the highest-sequence segment.
struct WalSegmentMeta {
  uint64_t seq = 0;
  uint64_t record_count = 0;
  /// Min/max commit_ts over kCommit records (0 when the segment holds no
  /// commit record). A segment with max_commit_ts <= a base-image
  /// watermark has every commit captured by that image.
  Timestamp min_commit_ts = 0;
  Timestamp max_commit_ts = 0;
  /// Create-watermark rule: a segment holding kTableCreate records is
  /// reclaimable only once every created table's id/name binding is
  /// captured in the surviving base image — i.e. max_table_id_created is
  /// below the base image's table count (ids are dense).
  bool has_table_create = false;
  uint32_t max_table_id_created = 0;
};

/// One record headed for the WAL: the encoded frame plus the fields the
/// per-segment metadata accumulates. Built by MakeWalFrame so the encoder
/// and the metadata can never disagree.
struct WalFrame {
  std::string bytes;
  LogRecordType type = LogRecordType::kCommit;
  Timestamp commit_ts = 0;
  /// Assigned table id for kTableCreate records; 0 otherwise.
  uint32_t table_id = 0;
};

WalFrame MakeWalFrame(const LogRecord& record);

/// Fold one record's contribution into `meta` (shared by the writer's
/// append path and recovery's rebuild-from-scan).
void AccumulateSegmentMeta(LogRecordType type, Timestamp commit_ts,
                           uint32_t table_id, WalSegmentMeta* meta);

/// Total ScanWalSegment invocations in this process — lets tests assert
/// that metadata-driven GC performs zero segment re-reads.
uint64_t ScanWalSegmentCalls();

/// Segment files in `dir`, sorted by sequence number ascending. A missing
/// directory yields OK and an empty list (fresh database). Non-WAL files
/// are ignored.
Status ListWalSegments(const std::string& dir,
                       std::vector<std::string>* paths);

/// Outcome of scanning one segment file.
struct WalScanResult {
  /// Every complete, CRC-valid record, in append order.
  std::vector<LogRecord> records;
  /// OK if the segment ended exactly on a frame boundary; kTruncated /
  /// kCorruption if the tail was short or damaged (records before the bad
  /// frame are still returned — the recovery policy decides whether a bad
  /// tail is a torn write or real corruption).
  Status tail;
  /// Bytes of clean prefix (the offset where the bad tail starts; the
  /// file size when tail is OK). Recovery truncates a torn newest segment
  /// to this, so the tear cannot end up mid-log once later sessions
  /// append new segments.
  uint64_t valid_bytes = 0;
  /// Total file size scanned.
  uint64_t file_bytes = 0;
};

/// Read and parse one segment. kIOError only for filesystem failures;
/// format problems are reported through WalScanResult::tail.
Status ScanWalSegment(const std::string& path, WalScanResult* out,
                      io::Env* env = nullptr);

class WalWriter {
 public:
  /// `fsync`: sync file data after each batch (and the directory when a
  /// segment is created). `env` (nullptr = real filesystem) carries every
  /// write/fsync.
  WalWriter(std::string dir, uint64_t segment_bytes, bool fsync,
            io::Env* env = nullptr);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append every frame, rotating segments as needed, then sync once.
  /// Frames are written whole and in order, so the durable log is always a
  /// prefix of the appended sequence (modulo a torn final frame). Segment
  /// metadata is accumulated locally (no locking on the per-frame path)
  /// and published to the registry when a segment seals (before the next
  /// segment's file exists) and at the end of each batch — exactly the
  /// granularity the registry invariant needs, since GC never touches the
  /// open (highest-sequence) segment.
  ///
  /// Failure policy (fsyncgate-correct): the first write or fsync failure
  /// poisons the writer permanently — every later AppendBatch returns the
  /// same sticky status without touching the file, and the destructor
  /// never re-fsyncs the poisoned descriptor. Retrying an fsync that
  /// failed proves nothing (the kernel may already have dropped the dirty
  /// pages while marking them clean), and appending past a possibly-torn
  /// frame would bury the tear mid-segment where recovery must treat it
  /// as corruption rather than a clean tail.
  Status AppendBatch(const std::vector<WalFrame>& frames);

  /// Install metadata for segments that predate this writer (recovery's
  /// scan already parsed them). Existing entries are kept — a segment this
  /// writer wrote is never overwritten by stale seed data.
  void SeedSegmentMeta(const std::vector<WalSegmentMeta>& metas);

  /// Snapshot of the registry, keyed by segment sequence number.
  std::map<uint64_t, WalSegmentMeta> SegmentMetadata() const;

  /// Drop a deleted segment's registry entry (checkpoint GC).
  void ForgetSegment(uint64_t seq);

  // Counters are relaxed atomics: the writer is single-threaded (the
  // flusher), but stats/GC readers sample from other threads.
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t segments_created() const {
    return segments_created_.load(std::memory_order_relaxed);
  }

 private:
  /// Create wal_dir if needed and open the next segment (one past the
  /// highest existing sequence number — never append to a possibly-torn
  /// pre-crash segment).
  Status EnsureOpen();
  Status RotateSegment();

  const std::string dir_;
  const uint64_t segment_bytes_;
  const bool fsync_;
  io::Env* const env_;

  /// First write/fsync failure, sticky (flusher thread only). See
  /// AppendBatch's failure policy.
  Status io_status_;

  /// Publish current_meta_ into the registry (overwrites the open
  /// segment's entry with the authoritative accumulation).
  void PublishCurrentMeta();

  int fd_ = -1;
  uint64_t next_seq_ = 0;       ///< Valid after EnsureOpen.
  uint64_t current_seq_ = 0;    ///< Sequence of the open segment (fd_).
  uint64_t segment_offset_ = 0; ///< Bytes in the open segment.
  bool opened_ = false;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> segments_created_{0};

  /// The open segment's metadata, accumulated lock-free by the flusher
  /// and published to meta_ at rotation and batch end.
  WalSegmentMeta current_meta_;

  /// Segment metadata registry: seeded by recovery for pre-crash
  /// segments, extended by the append path for this session's. Guarded by
  /// meta_mu_ (the flusher writes, stats/GC threads read).
  mutable std::mutex meta_mu_;
  std::map<uint64_t, WalSegmentMeta> meta_;
};

}  // namespace ssidb::recovery

#endif  // SSIDB_RECOVERY_WAL_H_
