// Segmented, file-backed write-ahead log: the physical layer under
// LogManager's group-commit flusher and the input to crash recovery.
//
// Layout: LogOptions::wal_dir holds segment files named
// wal-<seq, 20 digits>.log. A segment is a plain concatenation of
// LogRecord frames (see log_manager.h for the frame format); the writer
// appends whole frames, fsyncs once per group-commit batch, and rotates to
// a new segment when the current one exceeds the configured size. Segments
// are immutable once rotated away from, so only the newest segment can
// carry a torn tail after a crash.
//
// The writer is lazy: no file (or directory) is created until the first
// append. DB::Open relies on this — recovery scans the directory before
// the engine's own writer has touched it, so the newest on-disk segment is
// exactly the pre-crash tail.
//
// Threading: WalWriter is driven by a single thread (LogManager's
// flusher); readers run before the writer's first append (recovery) or on
// test-owned copies.

#ifndef SSIDB_RECOVERY_WAL_H_
#define SSIDB_RECOVERY_WAL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/txn/log_manager.h"

namespace ssidb::recovery {

/// Name of segment `seq` ("wal-00000000000000000007.log").
std::string WalSegmentName(uint64_t seq);

/// Segment files in `dir`, sorted by sequence number ascending. A missing
/// directory yields OK and an empty list (fresh database). Non-WAL files
/// are ignored.
Status ListWalSegments(const std::string& dir,
                       std::vector<std::string>* paths);

/// Outcome of scanning one segment file.
struct WalScanResult {
  /// Every complete, CRC-valid record, in append order.
  std::vector<LogRecord> records;
  /// OK if the segment ended exactly on a frame boundary; kTruncated /
  /// kCorruption if the tail was short or damaged (records before the bad
  /// frame are still returned — the recovery policy decides whether a bad
  /// tail is a torn write or real corruption).
  Status tail;
  /// Bytes of clean prefix (the offset where the bad tail starts; the
  /// file size when tail is OK). Recovery truncates a torn newest segment
  /// to this, so the tear cannot end up mid-log once later sessions
  /// append new segments.
  uint64_t valid_bytes = 0;
  /// Total file size scanned.
  uint64_t file_bytes = 0;
};

/// Read and parse one segment. kIOError only for filesystem failures;
/// format problems are reported through WalScanResult::tail.
Status ScanWalSegment(const std::string& path, WalScanResult* out);

class WalWriter {
 public:
  /// `fsync`: sync file data after each batch (and the directory when a
  /// segment is created).
  WalWriter(std::string dir, uint64_t segment_bytes, bool fsync);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append every frame, rotating segments as needed, then sync once.
  /// Frames are written whole and in order, so the durable log is always a
  /// prefix of the appended sequence (modulo a torn final frame).
  Status AppendBatch(const std::vector<std::string>& frames);

  // Counters are relaxed atomics: the writer is single-threaded (the
  // flusher), but stats/GC readers sample from other threads.
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t segments_created() const {
    return segments_created_.load(std::memory_order_relaxed);
  }

 private:
  /// Create wal_dir if needed and open the next segment (one past the
  /// highest existing sequence number — never append to a possibly-torn
  /// pre-crash segment).
  Status EnsureOpen();
  Status RotateSegment();

  const std::string dir_;
  const uint64_t segment_bytes_;
  const bool fsync_;

  int fd_ = -1;
  uint64_t next_seq_ = 0;       ///< Valid after EnsureOpen.
  uint64_t segment_offset_ = 0; ///< Bytes in the open segment.
  bool opened_ = false;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> segments_created_{0};
};

}  // namespace ssidb::recovery

#endif  // SSIDB_RECOVERY_WAL_H_
