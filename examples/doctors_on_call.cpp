// The paper's opening example (§1.2, Example 1): a hospital roster with
// the undeclared invariant "at least one doctor on duty per shift". Each
// transaction moves one doctor to reserve *after checking* the invariant —
// and is perfectly correct when run alone.
//
// This program runs the two concurrent removals under snapshot isolation
// (both commit; the ward is left unstaffed) and under Serializable SI (one
// transaction aborts with the unsafe error; the invariant survives),
// demonstrating why "check the constraint in the transaction" is not
// enough under SI.
//
//   $ ./build/examples/doctors_on_call

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/db/db.h"

using ssidb::DB;
using ssidb::DBOptions;
using ssidb::IsolationLevel;
using ssidb::Slice;
using ssidb::Status;
using ssidb::TableId;
using ssidb::Transaction;

namespace {

int OnDutyCount(Transaction* txn, TableId duties, Status* status) {
  int count = 0;
  *status = txn->Scan(duties, "shift1/", "shift1/~",
                      [&count](Slice, Slice value) {
                        if (value == Slice("on duty")) ++count;
                        return true;
                      });
  return count;
}

/// One phase of the §1.2 program, so two instances can interleave:
///   UPDATE Duties SET Status='reserve' WHERE DoctorId=:D AND Shift=:S;
///   SELECT COUNT(*) ... WHERE Status='on duty';
///   IF (count = 0) ROLLBACK ELSE COMMIT
/// Returns the constraint-check-then-commit outcome.
Status CheckAndCommit(Transaction* txn, TableId duties) {
  if (!txn->active()) return Status::Unsafe("aborted by the engine");
  Status scan;
  const int on_duty = OnDutyCount(txn, duties, &scan);
  if (!scan.ok()) {
    if (txn->active()) txn->Abort();
    return scan;
  }
  if (on_duty == 0) {
    txn->Abort();
    return Status::InvalidArgument("would leave the shift unstaffed");
  }
  return txn->Commit();
}

void RunScenario(IsolationLevel iso, const char* label) {
  DBOptions options;
  std::unique_ptr<DB> db;
  if (!DB::Open(options, &db).ok()) abort();
  TableId duties = 0;
  db->CreateTable("duties", &duties);
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    seed->Insert(duties, "shift1/dr_house", "on duty");
    seed->Insert(duties, "shift1/dr_wilson", "on duty");
    seed->Commit();
  }

  printf("--- %s ---\n", label);
  // Two concurrent instances of the program, one per doctor, interleaved
  // the way two web requests would race: both update first, then each
  // checks the invariant on its own snapshot, then both try to commit.
  auto t1 = db->Begin({iso});
  auto t2 = db->Begin({iso});
  Status s1 = t1->Put(duties, "shift1/dr_house", "reserve");
  Status s2 = t2->Put(duties, "shift1/dr_wilson", "reserve");
  Status c1 = s1.ok() ? CheckAndCommit(t1.get(), duties) : s1;
  Status c2 = s2.ok() ? CheckAndCommit(t2.get(), duties) : s2;
  if (t1->active()) t1->Abort();
  if (t2->active()) t2->Abort();
  printf("dr_house  -> reserve: %s\n", c1.ToString().c_str());
  printf("dr_wilson -> reserve: %s\n", c2.ToString().c_str());

  auto check = db->Begin({IsolationLevel::kSnapshot});
  Status scan;
  const int on_duty = OnDutyCount(check.get(), duties, &scan);
  check->Commit();
  printf("doctors on duty after both transactions: %d %s\n\n", on_duty,
         on_duty == 0 ? "(INVARIANT VIOLATED!)" : "(invariant holds)");
}

}  // namespace

int main() {
  // Under plain SI both updates commit: each checked the invariant on its
  // own snapshot, where the other doctor was still on duty.
  RunScenario(IsolationLevel::kSnapshot, "snapshot isolation");
  // Under Serializable SI the engine detects the rw-antidependency cycle
  // and aborts one transaction; retrying it would then see 0 doctors on
  // duty and roll itself back.
  RunScenario(IsolationLevel::kSerializableSSI, "serializable SI");
  return 0;
}
