// Static dependency graph analysis (§2.6) of the paper's workloads: the
// design-time alternative to runtime SSI. Prints each SDG with its
// vulnerable edges and pivots — reproducing the conclusions of Figs 2.8,
// 2.9, 2.10 and 5.3 — and shows how the §2.8.5 fixes close SmallBank's
// dangerous structure.
//
//   $ ./build/examples/sdg_analysis

#include <cstdio>

#include "src/sgt/sdg.h"
#include "src/sgt/sdg_catalog.h"

using namespace ssidb::sgt;

namespace {

void Show(const char* title, const std::vector<Program>& programs) {
  printf("=== %s ===\n%s\n", title,
         DescribeSdg(programs, AnalyzeSdg(programs)).c_str());
}

}  // namespace

int main() {
  Show("sibench (§5.2)", SiBenchPrograms());
  Show("SmallBank (Fig 2.9) — WriteCheck is the pivot",
       SmallBankPrograms());
  Show("SmallBank + PromoteBW (Fig 2.10) — fixed, at a price",
       SmallBankPromoteBW());
  Show("SmallBank + MaterializeWT — the cheap fix",
       SmallBankMaterializeWT());
  Show("TPC-C (Fig 2.8) — serializable under plain SI", TpccPrograms());
  Show("TPC-C++ (Fig 5.3) — Credit Check breaks it",
       TpccPlusPlusPrograms());
  printf(
      "The runtime alternative: Serializable SI needs none of this "
      "analysis —\nit detects the same dangerous structures as they "
      "happen (Chapter 3).\n");
  return 0;
}
