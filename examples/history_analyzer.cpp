// The after-the-fact analysis tool of §3.1.1, built on the history
// recorder and MVSG oracle: run a workload with history recording enabled,
// then reconstruct the multiversion serialization graph and report edges,
// cycles and dangerous structures.
//
// The thesis rejected this design as a *guarantee* mechanism (absence of a
// detected anomaly proves nothing about other interleavings) but it makes
// an excellent debugging/testing aid — exactly how this repository's test
// suite uses it.
//
//   $ ./build/examples/history_analyzer

#include <cstdio>
#include <memory>

#include "src/db/db.h"
#include "src/sgt/mvsg.h"

using ssidb::DB;
using ssidb::DBOptions;
using ssidb::IsolationLevel;
using ssidb::Status;
using ssidb::TableId;

namespace {

void Analyze(DB* db, const char* label) {
  const ssidb::sgt::MVSGResult result =
      ssidb::sgt::AnalyzeHistory(db->history()->Snapshot());
  printf("--- %s ---\n%s\n", label,
         ssidb::sgt::DescribeResult(result).c_str());
}

}  // namespace

int main() {
  DBOptions options;
  options.record_history = true;  // Feed the §3.1.1 analyzer.
  std::unique_ptr<DB> db;
  if (!DB::Open(options, &db).ok()) return 1;
  TableId t = 0;
  db->CreateTable("items", &t);
  {
    auto seed = db->Begin({IsolationLevel::kSnapshot});
    seed->Insert(t, "x", "50");
    seed->Insert(t, "y", "50");
    seed->Commit();
  }
  db->history()->Clear();  // Analyze only what follows.

  // Execute the classic write-skew interleaving at plain SI.
  {
    auto t1 = db->Begin({IsolationLevel::kSnapshot});
    auto t2 = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    t1->Get(t, "x", &v);
    t1->Get(t, "y", &v);
    t2->Get(t, "x", &v);
    t2->Get(t, "y", &v);
    t1->Put(t, "x", "-20");
    t2->Put(t, "y", "-30");
    Status c1 = t1->Commit();
    Status c2 = t2->Commit();
    printf("SI write-skew commits: %s / %s\n", c1.ToString().c_str(),
           c2.ToString().c_str());
  }
  Analyze(db.get(), "snapshot isolation execution");

  // Same program at Serializable SI: the graph stays acyclic because the
  // engine aborted one transaction.
  db->history()->Clear();
  {
    auto t1 = db->Begin({IsolationLevel::kSerializableSSI});
    auto t2 = db->Begin({IsolationLevel::kSerializableSSI});
    std::string v;
    t1->Get(t, "x", &v);
    t1->Get(t, "y", &v);
    t2->Get(t, "x", &v);
    t2->Get(t, "y", &v);
    Status w1 = t1->Put(t, "x", "-20");
    Status c1 = w1.ok() ? t1->Commit() : w1;
    Status w2 = t2->active() ? t2->Put(t, "y", "-30") : Status::Unsafe("");
    Status c2 = w2.ok() ? t2->Commit() : w2;
    printf("SSI write-skew commits: %s / %s\n", c1.ToString().c_str(),
           c2.ToString().c_str());
    if (t1->active()) t1->Abort();
    if (t2->active()) t2->Abort();
  }
  Analyze(db.get(), "serializable SI execution");
  return 0;
}
