// TPC-C++ demo: load a small warehouse, run the paper's §5.3.4 mix from
// several terminals at Serializable SI, and show the per-class outcome
// counts plus the spec consistency check — the end-to-end OLTP scenario
// the paper's introduction motivates.
//
//   $ ./build/examples/tpcc_demo [threads] [seconds]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "src/workloads/tpcc_workload.h"

using namespace ssidb;
using namespace ssidb::workloads::tpcc;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;

  DBOptions options;
  std::unique_ptr<DB> db;
  if (!DB::Open(options, &db).ok()) return 1;

  TpccConfig config;
  config.warehouses = 1;
  config.tiny = true;  // 100 customers/district: laptop-quick load.
  std::unique_ptr<TpccWorkload> workload;
  printf("loading TPC-C++ (W=%u, tiny scale)...\n", config.warehouses);
  Status st = TpccWorkload::Setup(db.get(), config, 42, &workload);
  if (!st.ok()) {
    fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  bench::SeriesConfig series{"SSI", IsolationLevel::kSerializableSSI,
                             std::nullopt};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0}, unsafe{0}, conflicts{0}, rollbacks{0};

  std::vector<std::thread> terminals;
  for (int t = 0; t < threads; ++t) {
    terminals.emplace_back([&, t] {
      Random rng(2000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        Status s = workload->RunOne(db.get(), series, t, &rng);
        if (s.ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        } else if (s.IsUnsafe()) {
          unsafe.fetch_add(1, std::memory_order_relaxed);
        } else if (s.IsUpdateConflict() || s.IsDeadlock()) {
          conflicts.fetch_add(1, std::memory_order_relaxed);
        } else {
          rollbacks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& th : terminals) th.join();

  printf("ran %d terminals for %.1fs at Serializable SI:\n", threads,
         seconds);
  printf("  committed          %8llu (%.0f tps)\n",
         static_cast<unsigned long long>(commits.load()),
         commits.load() / seconds);
  printf("  unsafe aborts      %8llu (SSI dangerous structures)\n",
         static_cast<unsigned long long>(unsafe.load()));
  printf("  conflicts/deadlock %8llu\n",
         static_cast<unsigned long long>(conflicts.load()));
  printf("  app rollbacks      %8llu (1%% unused item ids, ...)\n",
         static_cast<unsigned long long>(rollbacks.load()));

  st = workload->CheckConsistency(db.get());
  printf("spec consistency conditions: %s\n",
         st.ok() ? "PASS" : st.ToString().c_str());
  return st.ok() ? 0 : 1;
}
