// A concurrent banking service on the SmallBank schema (§2.8.2): several
// teller threads run the five transaction programs with the standard retry
// discipline while an auditor thread repeatedly verifies that money is
// conserved. Run at Serializable SI, the audit always balances; the same
// program pointed at plain SI can (rarely) observe or create skew.
//
//   $ ./build/examples/banking [threads] [seconds]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/workloads/smallbank.h"

using ssidb::DB;
using ssidb::DBOptions;
using ssidb::IsolationLevel;
using ssidb::Random;
using ssidb::Status;
using ssidb::bench::SeriesConfig;
using ssidb::workloads::SmallBank;
using ssidb::workloads::SmallBankConfig;
using ssidb::workloads::SmallBankOp;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;

  DBOptions options;
  std::unique_ptr<DB> db;
  if (!DB::Open(options, &db).ok()) return 1;

  SmallBankConfig config;
  config.customers = 100;
  std::unique_ptr<SmallBank> bank;
  Status st = SmallBank::Setup(db.get(), config, &bank);
  if (!st.ok()) {
    fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }

  int64_t initial_total = 0;
  bank->TotalBalance(db.get(), &initial_total);
  printf("bank open: %llu customers, total %lld cents\n",
         static_cast<unsigned long long>(config.customers),
         static_cast<long long>(initial_total));

  // Deposits and checks change the total; track the committed delta so the
  // auditor can reconcile. (Balance/Amalgamate/TransactSaving conserve it;
  // DepositChecking adds; WriteCheck subtracts, incl. the $1 penalty.)
  std::atomic<int64_t> expected_delta{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> retries{0};

  SeriesConfig series{"SSI", IsolationLevel::kSerializableSSI, std::nullopt};

  std::vector<std::thread> tellers;
  for (int t = 0; t < threads; ++t) {
    tellers.emplace_back([&, t] {
      Random rng(1234 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Conserving programs only, so the audit is exact; deposits and
        // checks are exercised through the delta-tracked calls below.
        const uint64_t n1 = rng.Uniform(config.customers);
        uint64_t n2 = rng.Uniform(config.customers);
        if (n2 == n1) n2 = (n2 + 1) % config.customers;
        const SmallBankOp op = static_cast<SmallBankOp>(rng.Uniform(5));
        const int64_t cents = rng.UniformRange(1, 99) * 100;

        // Deposits are counted into expected_delta BEFORE the commit (and
        // rolled back on failure): a commit becomes snapshot-visible the
        // moment the watermark covers it, slightly before RunOp returns,
        // so counting afterwards would let an auditor snapshot observe an
        // uncounted deposit and flag a phantom failure. Checks subtract
        // AFTER the commit for the same reason mirrored: an uncounted
        // visible decrease only lowers the total, never breaches the
        // upper bound.
        const bool deposit = op == SmallBankOp::kDepositChecking ||
                             op == SmallBankOp::kTransactSaving;
        if (deposit) {
          expected_delta.fetch_add(cents, std::memory_order_relaxed);
        }
        Status s = bank->RunOp(db.get(), series, op, n1, n2, cents);
        if (s.ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
          if (op == SmallBankOp::kWriteCheck) {
            // The program may or may not charge the $1 penalty; recompute
            // from the audit instead of guessing: flag below.
            expected_delta.fetch_add(-cents, std::memory_order_relaxed);
          }
        } else {
          if (deposit) {
            expected_delta.fetch_add(-cents, std::memory_order_relaxed);
          }
          if (s.IsAbort()) {
            retries.fetch_add(1, std::memory_order_relaxed);  // Retry later.
          }
        }
      }
    });
  }

  // Auditor: scans both balance tables at snapshot isolation (a consistent
  // snapshot is all an auditor needs; §3.8). Penalties make the exact
  // total drift below expected_delta; it must never exceed it.
  int audits = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    int64_t total = 0;
    if (bank->TotalBalance(db.get(), &total).ok()) {
      ++audits;
      const int64_t upper = initial_total + expected_delta.load();
      if (total > upper) {
        printf("AUDIT FAILURE: total %lld exceeds reconcilable %lld\n",
               static_cast<long long>(total), static_cast<long long>(upper));
        stop.store(true);
        for (auto& th : tellers) th.join();
        return 1;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& th : tellers) th.join();

  int64_t final_total = 0;
  bank->TotalBalance(db.get(), &final_total);
  printf("closed: %llu commits, %llu retries, %d audits, final total %lld\n",
         static_cast<unsigned long long>(commits.load()),
         static_cast<unsigned long long>(retries.load()), audits,
         static_cast<long long>(final_total));
  const ssidb::DBStats stats = db->GetStats();
  printf("engine: %llu unsafe aborts, %llu lock waits, %llu log records\n",
         static_cast<unsigned long long>(stats.unsafe_aborts),
         static_cast<unsigned long long>(stats.lock_waits),
         static_cast<unsigned long long>(stats.log_records));
  return 0;
}
