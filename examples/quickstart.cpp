// Quickstart: open an engine, create a table, run transactions at the
// three isolation levels, and handle the error classes a client sees.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <string>

#include "src/db/db.h"

using ssidb::DB;
using ssidb::DBOptions;
using ssidb::IsolationLevel;
using ssidb::Slice;
using ssidb::Status;
using ssidb::TableId;

int main() {
  // 1. Open an in-memory engine. The defaults match the paper's InnoDB
  //    prototype: row-level locks, precise SSI conflict references.
  DBOptions options;
  std::unique_ptr<DB> db;
  Status st = DB::Open(options, &db);
  if (!st.ok()) {
    fprintf(stderr, "open: %s\n", st.ToString().c_str());
    return 1;
  }

  TableId accounts = 0;
  st = db->CreateTable("accounts", &accounts);
  if (!st.ok()) return 1;

  // 2. A Serializable SI transaction: reads never block, and commit fails
  //    with an "unsafe" error if serializability would be at risk.
  {
    auto txn = db->Begin({IsolationLevel::kSerializableSSI});
    st = txn->Insert(accounts, "alice", "100");
    if (st.ok()) st = txn->Insert(accounts, "bob", "250");
    if (st.ok()) st = txn->Commit();
    printf("seed accounts: %s\n", st.ToString().c_str());
  }

  // 3. Reads, scans and updates.
  {
    auto txn = db->Begin({IsolationLevel::kSerializableSSI});
    std::string balance;
    st = txn->Get(accounts, "alice", &balance);
    printf("alice = %s\n", balance.c_str());

    printf("all accounts:\n");
    txn->Scan(accounts, "a", "z", [](Slice key, Slice value) {
      printf("  %.*s = %.*s\n", static_cast<int>(key.size()), key.data(),
             static_cast<int>(value.size()), value.data());
      return true;
    });

    st = txn->Put(accounts, "alice", "90");
    if (st.ok()) st = txn->Commit();
    printf("update: %s\n", st.ToString().c_str());
  }

  // 4. The retry discipline: any status with IsAbort() means the engine
  //    already rolled the transaction back — deadlock (S2PL), update
  //    conflict (SI first-committer-wins) or unsafe (SSI dangerous
  //    structure). Clients simply run the transaction again.
  for (int attempt = 1; attempt <= 3; ++attempt) {
    auto txn = db->Begin({IsolationLevel::kSerializableSSI});
    std::string v;
    st = txn->Get(accounts, "bob", &v);
    if (st.ok()) st = txn->Put(accounts, "bob", v + "0");  // 10x bob.
    if (st.ok()) st = txn->Commit();
    if (st.ok()) {
      printf("bob updated on attempt %d\n", attempt);
      break;
    }
    if (!st.IsAbort()) {  // Logic error, not a concurrency abort.
      fprintf(stderr, "unexpected: %s\n", st.ToString().c_str());
      return 1;
    }
    printf("attempt %d aborted (%s); retrying\n", attempt,
           st.ToString().c_str());
  }

  // 5. Plain snapshot isolation for cheap read-only queries (§3.8): no
  //    read locks, no unsafe aborts — at the cost of possibly observing a
  //    state no serial execution of the updates could produce.
  {
    auto query = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    query->Get(accounts, "alice", &v);
    printf("SI query sees alice = %s\n", v.c_str());
    query->Commit();
  }

  // 6. Engine statistics.
  ssidb::DBStats stats = db->GetStats();
  printf("stats: unsafe_aborts=%llu deadlocks=%llu log_records=%llu\n",
         static_cast<unsigned long long>(stats.unsafe_aborts),
         static_cast<unsigned long long>(stats.deadlocks),
         static_cast<unsigned long long>(stats.log_records));
  return 0;
}
