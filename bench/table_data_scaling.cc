// The §5.3.6 data-scaling table: loads each TPC-C++ scale configuration
// and reports per-table row counts, total rows, approximate resident bytes
// and load time — the reproduction of the thesis's data-volume table
// (standard vs tiny scale at W = 1 and W = W_BIG).
//
// The paper's table (SQL rows on InnoDB pages):
//                 W = 1      W = 10
//   standard      120 MB     1.2 GB
//   tiny          2 MB       20 MB
// Our encoded key/value rows are leaner, so absolute bytes are smaller,
// but the ratios (x60 standard/tiny, xW across warehouses) must hold.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/db/db.h"
#include "src/workloads/tpcc_loader.h"

namespace ssidb::workloads::tpcc {
namespace {

struct TableStat {
  const char* name;
  TableId id;
};

void Report(uint32_t warehouses, bool tiny) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  if (!DB::Open(opts, &db).ok()) abort();
  TpccConfig config;
  config.warehouses = warehouses;
  config.tiny = tiny;
  TpccTables tables;
  const auto start = std::chrono::steady_clock::now();
  Status st = LoadTpcc(db.get(), config, 42, &tables);
  const double load_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  if (!st.ok()) {
    fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    abort();
  }

  const TableStat stats[] = {
      {"warehouse", tables.warehouse},
      {"district", tables.district},
      {"customer", tables.customer},
      {"customer_credit", tables.customer_credit},
      {"customer_name", tables.customer_name},
      {"item", tables.item},
      {"stock", tables.stock},
      {"order", tables.order},
      {"order_customer", tables.order_customer},
      {"new_order", tables.new_order},
      {"order_line", tables.order_line},
  };

  printf("scale=%s W=%u (load %.2fs)\n", tiny ? "tiny" : "standard",
         warehouses, load_s);
  size_t total_rows = 0;
  size_t total_bytes = 0;
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  for (const TableStat& t : stats) {
    size_t rows = 0;
    size_t bytes = 0;
    Status s = txn->Scan(t.id, Slice("", 0), std::string(64, '\xff'),
                         [&rows, &bytes](Slice key, Slice value) {
                           ++rows;
                           bytes += key.size() + value.size();
                           return true;
                         });
    if (!s.ok()) abort();
    printf("  %-16s %9zu rows %12zu bytes\n", t.name, rows, bytes);
    total_rows += rows;
    total_bytes += bytes;
  }
  txn->Commit();
  printf("  %-16s %9zu rows %12.1f MB\n\n", "TOTAL", total_rows,
         total_bytes / (1024.0 * 1024.0));
}

}  // namespace
}  // namespace ssidb::workloads::tpcc

int main() {
  using ssidb::workloads::tpcc::Report;
  const char* env = std::getenv("SSIDB_TPCC_WAREHOUSES");
  const uint32_t w_big =
      env != nullptr && std::atol(env) > 0 ? std::atol(env) : 2;
  printf("TPC-C++ data scaling (the §5.3.6 table)\n\n");
  Report(1, /*tiny=*/true);
  Report(w_big, /*tiny=*/true);
  Report(1, /*tiny=*/false);
  Report(w_big, /*tiny=*/false);
  return 0;
}
