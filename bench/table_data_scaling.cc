// The §5.3.6 data-scaling table: loads each TPC-C++ scale configuration
// and reports per-table row counts, total rows, approximate resident bytes
// and load time — the reproduction of the thesis's data-volume table
// (standard vs tiny scale at W = 1 and W = W_BIG).
//
// The paper's table (SQL rows on InnoDB pages):
//                 W = 1      W = 10
//   standard      120 MB     1.2 GB
//   tiny          2 MB       20 MB
// Our encoded key/value rows are leaner, so absolute bytes are smaller,
// but the ratios (x60 standard/tiny, xW across warehouses) must hold.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"
#include "src/workloads/tpcc_loader.h"

namespace ssidb::workloads::tpcc {
namespace {

struct TableStat {
  const char* name;
  TableId id;
};

void Report(uint32_t warehouses, bool tiny) {
  DBOptions opts;
  std::unique_ptr<DB> db;
  if (!DB::Open(opts, &db).ok()) abort();
  TpccConfig config;
  config.warehouses = warehouses;
  config.tiny = tiny;
  TpccTables tables;
  const auto start = std::chrono::steady_clock::now();
  Status st = LoadTpcc(db.get(), config, 42, &tables);
  const double load_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  if (!st.ok()) {
    fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    abort();
  }

  const TableStat stats[] = {
      {"warehouse", tables.warehouse},
      {"district", tables.district},
      {"customer", tables.customer},
      {"customer_credit", tables.customer_credit},
      {"customer_name", tables.customer_name},
      {"item", tables.item},
      {"stock", tables.stock},
      {"order", tables.order},
      {"order_customer", tables.order_customer},
      {"new_order", tables.new_order},
      {"order_line", tables.order_line},
  };

  printf("scale=%s W=%u (load %.2fs)\n", tiny ? "tiny" : "standard",
         warehouses, load_s);
  size_t total_rows = 0;
  size_t total_bytes = 0;
  auto txn = db->Begin({IsolationLevel::kSnapshot});
  for (const TableStat& t : stats) {
    size_t rows = 0;
    size_t bytes = 0;
    Status s = txn->Scan(t.id, Slice("", 0), std::string(64, '\xff'),
                         [&rows, &bytes](Slice key, Slice value) {
                           ++rows;
                           bytes += key.size() + value.size();
                           return true;
                         });
    if (!s.ok()) abort();
    printf("  %-16s %9zu rows %12zu bytes\n", t.name, rows, bytes);
    total_rows += rows;
    total_bytes += bytes;
  }
  txn->Commit();
  printf("  %-16s %9zu rows %12.1f MB\n\n", "TOTAL", total_rows,
         total_bytes / (1024.0 * 1024.0));
}

/// Resident set size from /proc/self/status, in bytes (0 if unreadable).
size_t CurrentRssBytes() {
  FILE* f = fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t rss_kb = 0;
  while (fgets(line, sizeof(line), f) != nullptr) {
    if (strncmp(line, "VmRSS:", 6) == 0) {
      rss_kb = strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  fclose(f);
  return rss_kb * 1024;
}

double MedianOf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// The past-RAM half of the table: a dataset 4x the configured buffer pool
/// loaded with interleaved spill sweeps (so resident versions never pile up
/// to the dataset size), then interleaved A/B read rounds:
///   A (fault) — uniform point reads with a spill sweep every few thousand
///               reads, so most reads fault a chain back through the pool;
///   B (hot)   — point reads over a small resident working set (pure pool
///               and chain hits).
/// Reports the medians, the pool hit rate and the peak RSS as one JSON
/// line so the driver can append it to BENCH_micro_ops.json and assert
/// that RSS stayed bounded near the pool size, not the dataset size.
void PastRamReport() {
  const char* pool_env = std::getenv("SSIDB_POOL_MB");
  const size_t pool_mb =
      pool_env != nullptr && std::atol(pool_env) > 0 ? std::atol(pool_env) : 4;

  char run_dir[] = "/tmp/ssidb_scaling_XXXXXX";
  if (mkdtemp(run_dir) == nullptr) abort();

  DBOptions opts;
  opts.buffer_pool_bytes = pool_mb << 20;
  opts.data_dir = run_dir;
  opts.version_gc_interval_ms = 0;  // The bench drives spilling itself.

  // Large-ish values: the index and chain skeletons stay in memory by
  // design (the tier spills versions, not keys), so the value payload must
  // dominate for "RSS ~ pool size, not dataset size" to be observable.
  constexpr size_t kValueBytes = 3072;
  const size_t dataset_bytes = 4 * opts.buffer_pool_bytes;
  const uint64_t keys = dataset_bytes / (8 + kValueBytes);

  std::unique_ptr<DB> db;
  if (!DB::Open(opts, &db).ok()) abort();
  TableId table = 0;
  if (!db->CreateTable("past_ram", &table).ok()) abort();

  const std::string value(kValueBytes, 'v');
  auto spill_all = [&] {
    db->SpillChains(table);  // Clear second-chance bits...
    db->SpillChains(table);  // ...then evict.
  };

  // Load in batches with interleaved spills: the resident high-water mark
  // is one batch of chains, never the dataset.
  constexpr uint64_t kBatch = 2048;
  const auto load_start = std::chrono::steady_clock::now();
  for (uint64_t base = 0; base < keys; base += kBatch) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = base; i < std::min(base + kBatch, keys); ++i) {
      if (!txn->Put(table, EncodeU64Key(i), value).ok()) abort();
    }
    if (!txn->Commit().ok()) abort();
    spill_all();
  }
  const double load_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - load_start)
                            .count();
  // Return freed chain arenas to the OS before each sample, so RSS
  // reflects live state rather than allocator retention.
  auto sample_rss = [] {
#if defined(__GLIBC__)
    malloc_trim(0);
#endif
    return CurrentRssBytes();
  };
  size_t peak_rss = sample_rss();

  constexpr int kRounds = 3;
  constexpr uint64_t kReadsPerRound = 20000;
  constexpr uint64_t kReadsPerSweep = 4096;
  const uint64_t hot_keys = std::min<uint64_t>(keys, 1024);
  std::vector<double> fault_rps, hot_rps;
  Random rng(7);
  auto read_one = [&](uint64_t k) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    std::string v;
    if (!txn->Get(table, EncodeU64Key(k), &v).ok()) abort();
    txn->Commit();
  };
  for (int round = 0; round < kRounds; ++round) {
    // A: uniform reads over the whole dataset, re-spilling as we go.
    spill_all();
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kReadsPerRound; ++i) {
      read_one(rng.Uniform(keys));
      if ((i + 1) % kReadsPerSweep == 0) spill_all();
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    fault_rps.push_back(kReadsPerRound / secs);
    peak_rss = std::max(peak_rss, sample_rss());

    // B: reads over a small resident working set (first pass faults it in,
    // so warm it once outside the timed region).
    for (uint64_t k = 0; k < hot_keys; ++k) read_one(k);
    start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kReadsPerRound; ++i) {
      read_one(rng.Uniform(hot_keys));
    }
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    hot_rps.push_back(kReadsPerRound / secs);
    peak_rss = std::max(peak_rss, sample_rss());
  }

  const DBStats stats = db->GetStats();
  const double hit_rate =
      stats.buffer_pool_hits + stats.buffer_pool_misses > 0
          ? static_cast<double>(stats.buffer_pool_hits) /
                (stats.buffer_pool_hits + stats.buffer_pool_misses)
          : 0.0;

  printf("past-RAM: pool=%zuMB dataset=%.1fMB (%llu keys, load %.2fs)\n",
         pool_mb, dataset_bytes / (1024.0 * 1024.0),
         static_cast<unsigned long long>(keys), load_s);
  printf("  fault reads %.0f/s  hot reads %.0f/s  hit_rate %.3f  "
         "peak RSS %.1fMB\n",
         MedianOf(fault_rps), MedianOf(hot_rps), hit_rate,
         peak_rss / (1024.0 * 1024.0));
  printf("{\"name\":\"table_data_scaling_past_ram\",\"pool_bytes\":%zu,"
         "\"dataset_bytes\":%zu,\"keys\":%llu,\"fault_reads_per_s\":%.0f,"
         "\"hot_reads_per_s\":%.0f,\"hit_rate\":%.3f,\"peak_rss_bytes\":%zu,"
         "\"spilled_chains\":%llu,\"faulted_chains\":%llu}\n",
         static_cast<size_t>(opts.buffer_pool_bytes), dataset_bytes,
         static_cast<unsigned long long>(keys), MedianOf(fault_rps),
         MedianOf(hot_rps), hit_rate, peak_rss,
         static_cast<unsigned long long>(stats.spilled_chains),
         static_cast<unsigned long long>(stats.faulted_chains));

  db.reset();
  std::error_code ec;
  std::filesystem::remove_all(run_dir, ec);
}

}  // namespace
}  // namespace ssidb::workloads::tpcc

int main() {
  using ssidb::workloads::tpcc::PastRamReport;
  using ssidb::workloads::tpcc::Report;
  if (std::getenv("SSIDB_SKIP_TPCC") == nullptr) {
    const char* env = std::getenv("SSIDB_TPCC_WAREHOUSES");
    const uint32_t w_big =
        env != nullptr && std::atol(env) > 0 ? std::atol(env) : 2;
    printf("TPC-C++ data scaling (the §5.3.6 table)\n\n");
    Report(1, /*tiny=*/true);
    Report(w_big, /*tiny=*/true);
    Report(1, /*tiny=*/false);
    Report(w_big, /*tiny=*/false);
  }
  PastRamReport();
  return 0;
}
