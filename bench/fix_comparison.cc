// The §2.8.5 experiment (after Alomari et al. 2008): comparing the ways of
// making SmallBank serializable. Plain SI is the unsafe baseline; the four
// static fixes (materialize/promote on the WT or BW edge) close the SDG
// dangerous structure by adding write-write conflicts; Serializable SI
// closes it automatically at runtime.
//
// The thesis's motivating observations to look for in the output:
//   * PromoteBW/MaterializeBW turn the read-only Balance query into an
//     update — the costliest option (and the one vendor docs recommend!).
//   * MaterializeWT touches only the two update programs — the cheapest
//     static fix.
//   * SSI costs no application changes and sits near plain SI.

#include "bench/figure_common.h"
#include "src/workloads/smallbank.h"

namespace ssidb::bench {
namespace {

using workloads::SmallBank;
using workloads::SmallBankConfig;
using workloads::SmallBankFix;

SetupFn MakeSetup(SmallBankFix fix) {
  return [fix]() {
    DBOptions opts;  // Row-level engine, as Alomari's relational DBMSs.
    FigureSetup setup;
    Status st = DB::Open(opts, &setup.db);
    if (!st.ok()) abort();
    SmallBankConfig config;
    config.customers = 500;  // Contended enough for the fixes to matter.
    config.fix = fix;
    std::unique_ptr<SmallBank> bank;
    st = SmallBank::Setup(setup.db.get(), config, &bank);
    if (!st.ok()) abort();
    setup.workload = std::move(bank);
    return setup;
  };
}

}  // namespace
}  // namespace ssidb::bench

int main() {
  using namespace ssidb;
  using namespace ssidb::bench;
  PrintHeaderOnce();

  const std::vector<SeriesConfig> si_only = {
      SeriesConfig{"SI", IsolationLevel::kSnapshot, std::nullopt}};
  const std::vector<SeriesConfig> ssi_only = {
      SeriesConfig{"SSI", IsolationLevel::kSerializableSSI, std::nullopt}};

  // The unsafe baseline and the runtime solution.
  RunFigure("fix_none_si_unsafe", MakeSetup(workloads::SmallBankFix::kNone),
            si_only);
  RunFigure("fix_none_ssi", MakeSetup(workloads::SmallBankFix::kNone),
            ssi_only);

  // The four §2.8.5 static fixes, run at plain SI (now serializable).
  const struct {
    const char* name;
    workloads::SmallBankFix fix;
  } fixes[] = {
      {"fix_materialize_wt_si", workloads::SmallBankFix::kMaterializeWT},
      {"fix_promote_wt_si", workloads::SmallBankFix::kPromoteWT},
      {"fix_promote_wt_sfu_si",
       workloads::SmallBankFix::kPromoteWTSelectForUpdate},
      {"fix_materialize_bw_si", workloads::SmallBankFix::kMaterializeBW},
      {"fix_promote_bw_si", workloads::SmallBankFix::kPromoteBW},
  };
  for (const auto& f : fixes) {
    RunFigure(f.name, MakeSetup(f.fix), si_only);
  }
  return 0;
}
