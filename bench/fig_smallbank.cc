// Figures 6.1-6.5: the Berkeley DB SmallBank evaluation.
//
// Engine configured as the Berkeley DB prototype: page-level locking and
// versioning (§4.1), the basic flags algorithm (§4.3 — "the later
// enhancements from Sections 3.5-3.6 were not implemented"), periodic
// deadlock detection (db_perf ran the detector twice a second, §6.1.3).
//
//   Fig 6.1  short transactions   — no log flush, 2000 customers
//   Fig 6.2  long transactions    — log flush on commit
//   Fig 6.3  complex transactions — log flush + 10 ops per transaction
//   Fig 6.4  low contention       — log flush + 10x data
//   Fig 6.5  complex + low contention
//
// The paper's 10ms SATA flush is simulated; default 1ms keeps the sweep
// short (override with SSIDB_FLUSH_US=10000 for paper-scale latency).

#include "bench/figure_common.h"
#include "src/workloads/smallbank.h"

namespace ssidb::bench {
namespace {

using workloads::SmallBank;
using workloads::SmallBankConfig;

struct SmallBankFigure {
  const char* name;
  bool flush_log;
  int ops_per_txn;
  uint64_t customers;
  DeadlockPolicy deadlock_policy;
};

SetupFn MakeSetup(const SmallBankFigure& fig) {
  return [fig]() {
    DBOptions opts;
    // Berkeley DB prototype configuration (§4.3).
    opts.granularity = LockGranularity::kPage;
    opts.conflict_tracking = ConflictTracking::kFlags;
    // Calibration, documented in EXPERIMENTS.md: the simple-transaction
    // figures keep db_perf's periodic detector (its stalls are what drag
    // S2PL in the paper's Figs 6.1/6.2), with the 500ms interval scaled to
    // our ~100x shorter measure windows. The complex-transaction figures
    // (10 ops/txn) deadlock so densely at page granularity that a periodic
    // detector collapses *every* series on a single core, hiding the
    // paper's shape, so they run immediate detection instead.
    opts.deadlock_policy = fig.deadlock_policy;
    opts.deadlock_scan_interval_ms = 50;
    opts.rows_per_page = 20;  // ~100 leaf pages at 2000 customers (§6.1.2).
    opts.log.flush_on_commit = fig.flush_log;
    opts.log.flush_latency_us = EnvFlushUs(1000);
    FigureSetup setup;
    Status st = DB::Open(opts, &setup.db);
    if (!st.ok()) {
      fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
      abort();
    }
    SmallBankConfig config;
    config.customers = fig.customers;
    config.ops_per_txn = fig.ops_per_txn;
    std::unique_ptr<SmallBank> bank;
    st = SmallBank::Setup(setup.db.get(), config, &bank);
    if (!st.ok()) {
      fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      abort();
    }
    setup.workload = std::move(bank);
    return setup;
  };
}

}  // namespace
}  // namespace ssidb::bench

int main() {
  using namespace ssidb::bench;
  PrintHeaderOnce();
  using ssidb::DeadlockPolicy;
  const SmallBankFigure figures[] = {
      {"fig6.1_smallbank_short", false, 1, 2000, DeadlockPolicy::kPeriodic},
      {"fig6.2_smallbank_logflush", true, 1, 2000,
       DeadlockPolicy::kPeriodic},
      {"fig6.3_smallbank_complex", true, 10, 2000,
       DeadlockPolicy::kImmediate},
      {"fig6.4_smallbank_lowcontention", true, 1, 20000,
       DeadlockPolicy::kPeriodic},
      {"fig6.5_smallbank_complex_lowcont", true, 10, 20000,
       DeadlockPolicy::kImmediate},
  };
  for (const SmallBankFigure& fig : figures) {
    RunFigure(fig.name, MakeSetup(fig), StandardSeries());
  }
  return 0;
}
