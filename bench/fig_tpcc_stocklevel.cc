// Figures 6.17-6.18: the TPC-C++ Stock Level mix (§5.3.5, §6.4.3).
//
// Only New Order and Stock Level transactions, 10 SLEV per NEWO: ~100 rows
// read per row written. The read-dominated regime where multiversioning
// shines — SI and SSI keep readers off the lock manager's blocking paths
// while S2PL's shared locks collide with New Order's stock updates.
//
//   Fig 6.17  W=W_BIG standard scale
//   Fig 6.18  W=W_BIG tiny scale (contention isolated from data volume)
//
// Additionally reproduces the §3.8 mixing configuration as a fourth series
// ("SSI+SIRO"): updates at Serializable SI, read-only transactions at
// plain SI — the deployment the paper predicts will be popular.
//
// Note: Stock Level's §2.8.2.2 window read is the real predicate path —
// StockLevel (tpcc_txns.cc) reads the last-20-orders order-line window
// through Executor::Scan, which leaves SIREAD locks on the window so
// concurrent NEWO/DLVY writers raise the §3.2 rw-antidependency. Pinned by
// tests/tpcc_test.cc (TpccStockLevelScanTest); this benchmark does not
// approximate the scan.

#include <cstdlib>

#include "bench/figure_common.h"
#include "src/workloads/tpcc_workload.h"

namespace ssidb::bench {
namespace {

using workloads::tpcc::Mix;
using workloads::tpcc::TpccConfig;
using workloads::tpcc::TpccWorkload;

uint32_t EnvWarehouses(uint32_t dflt) {
  const char* v = std::getenv("SSIDB_TPCC_WAREHOUSES");
  if (v == nullptr) return dflt;
  const long w = std::atol(v);
  return w > 0 ? static_cast<uint32_t>(w) : dflt;
}

SetupFn MakeSetup(uint32_t warehouses, bool tiny) {
  return [warehouses, tiny]() {
    DBOptions opts;
    opts.log.flush_on_commit = true;
    opts.log.flush_latency_us = EnvFlushUs(100);
    FigureSetup setup;
    Status st = DB::Open(opts, &setup.db);
    if (!st.ok()) abort();
    TpccConfig config;
    config.warehouses = warehouses;
    config.tiny = tiny;
    config.mix = Mix::kStockLevel;
    std::unique_ptr<TpccWorkload> workload;
    st = TpccWorkload::Setup(setup.db.get(), config, 42, &workload);
    if (!st.ok()) {
      fprintf(stderr, "tpcc setup failed: %s\n", st.ToString().c_str());
      abort();
    }
    setup.workload = std::move(workload);
    return setup;
  };
}

std::vector<SeriesConfig> SeriesWithMixing() {
  std::vector<SeriesConfig> series = StandardSeries();
  series.push_back(SeriesConfig{"SSI+SIRO", IsolationLevel::kSerializableSSI,
                                IsolationLevel::kSnapshot});
  return series;
}

}  // namespace
}  // namespace ssidb::bench

int main() {
  using namespace ssidb::bench;
  PrintHeaderOnce();
  const uint32_t w_big = EnvWarehouses(2);
  RunFigure("fig6.17_tpcc_stocklevel_wbig", MakeSetup(w_big, false),
            SeriesWithMixing(), /*default_seconds=*/0.3,
            /*fresh_db_per_point=*/false);
  RunFigure("fig6.18_tpcc_stocklevel_tiny", MakeSetup(w_big, true),
            SeriesWithMixing(), /*default_seconds=*/0.3,
            /*fresh_db_per_point=*/false);
  return 0;
}
