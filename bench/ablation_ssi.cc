// Ablation benches for the design choices DESIGN.md calls out. Each
// ablation runs the same contended SmallBank workload and reports the
// paper-style CSV rows, varying exactly one engine option:
//
//   tracking   — kFlags (Fig 3.1-3.5) vs kReferences (Fig 3.9-3.10): the
//                §3.6 false-positive reduction shows up as a lower
//                unsafe_per_commit at equal throughput.
//   victim     — kPivot vs kYoungest (§3.7.2).
//   abortearly — §3.7.1 on/off: same abort totals, earlier detection
//                (less wasted work, slightly higher throughput).
//   upgrade    — §3.7.3 SIREAD upgrade on/off: fewer retained locks.
//   latesnap   — §4.5 late snapshot allocation on/off: FCW abort rate of
//                single-statement updates.
//   elr        — §4.4 early lock release on/off under commit flushes.

#include <cstdio>

#include "bench/figure_common.h"
#include "src/workloads/smallbank.h"

namespace ssidb::bench {
namespace {

using workloads::SmallBank;
using workloads::SmallBankConfig;

SetupFn MakeSetup(const DBOptions& opts, uint64_t customers) {
  return [opts, customers]() {
    FigureSetup setup;
    Status st = DB::Open(opts, &setup.db);
    if (!st.ok()) abort();
    SmallBankConfig config;
    config.customers = customers;
    std::unique_ptr<SmallBank> bank;
    st = SmallBank::Setup(setup.db.get(), config, &bank);
    if (!st.ok()) abort();
    setup.workload = std::move(bank);
    return setup;
  };
}

/// All ablations run SSI only (the options under study are SSI-specific),
/// on a small, contended account pool.
void RunAblation(const std::string& name, const DBOptions& opts,
                 uint64_t customers = 200) {
  const std::vector<SeriesConfig> ssi_only = {
      SeriesConfig{"SSI", IsolationLevel::kSerializableSSI, std::nullopt}};
  RunFigure(name, MakeSetup(opts, customers), ssi_only);
}

}  // namespace
}  // namespace ssidb::bench

int main() {
  using namespace ssidb;
  using namespace ssidb::bench;
  PrintHeaderOnce();

  {
    DBOptions opts;
    opts.conflict_tracking = ConflictTracking::kFlags;
    RunAblation("ablation_tracking_flags", opts);
    opts.conflict_tracking = ConflictTracking::kReferences;
    RunAblation("ablation_tracking_references", opts);
  }
  {
    DBOptions opts;
    opts.victim_policy = VictimPolicy::kPivot;
    RunAblation("ablation_victim_pivot", opts);
    opts.victim_policy = VictimPolicy::kYoungest;
    RunAblation("ablation_victim_youngest", opts);
  }
  {
    DBOptions opts;
    opts.abort_early = true;
    RunAblation("ablation_abortearly_on", opts);
    opts.abort_early = false;
    RunAblation("ablation_abortearly_off", opts);
  }
  {
    DBOptions opts;
    opts.upgrade_siread_locks = true;
    RunAblation("ablation_upgrade_on", opts);
    opts.upgrade_siread_locks = false;
    RunAblation("ablation_upgrade_off", opts);
  }
  {
    DBOptions opts;
    opts.late_snapshot = true;
    RunAblation("ablation_latesnap_on", opts);
    opts.late_snapshot = false;
    RunAblation("ablation_latesnap_off", opts);
  }
  {
    DBOptions opts;
    opts.log.flush_on_commit = true;
    opts.log.flush_latency_us = EnvFlushUs(1000);
    opts.log.early_lock_release = false;
    RunAblation("ablation_elr_off", opts);
    opts.log.early_lock_release = true;
    RunAblation("ablation_elr_on", opts);
  }
  return 0;
}
