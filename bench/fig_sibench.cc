// Figures 6.6-6.11: the InnoDB sibench evaluation (§6.3).
//
// Engine configured as the InnoDB prototype: row-level locks with gap
// locking, the precise reference-based conflict tracker (§4.6), immediate
// deadlock detection, commit flush enabled (InnoDB flushes its log; group
// commit is on).
//
//   Fig 6.6-6.8   mixed workload (1 query : 1 update), 10/100/1000 items
//   Fig 6.9-6.11  query-mostly (10 queries : 1 update), 10/100/1000 items
//
// Small item counts maximize write-write contention; large item counts
// make the query's scan (and its SIREAD locking under SSI, or shared
// locking under S2PL) the dominant cost — the regime where SI wins big and
// the paper measures SSI's lock-manager overhead (§6.3.3).

#include "bench/figure_common.h"
#include "src/workloads/sibench.h"

namespace ssidb::bench {
namespace {

using workloads::SiBench;
using workloads::SiBenchConfig;

SetupFn MakeSetup(uint64_t items, uint32_t queries_per_update) {
  return [items, queries_per_update]() {
    DBOptions opts;  // InnoDB prototype defaults: row locks, references.
    opts.log.flush_on_commit = true;
    opts.log.flush_latency_us = EnvFlushUs(100);  // Fast "disk" (SSD-ish).
    // SSIDB_WAL_DIR switches the point to the durable regime: a real
    // file-backed WAL with write+fsync group commits instead of the
    // simulated latency. SSIDB_CKPT_INTERVAL_MS additionally runs the
    // background checkpointer (incremental base+delta images + metadata
    // WAL GC) during the measurement, so the JSON artifact tracks the
    // full durable-regime overhead.
    opts.log.wal_dir = NextWalPointDir();
    opts.log.checkpoint_interval_ms = EnvCheckpointIntervalMs(0);
    // SSIDB_GC_WAIT_US enables the adaptive group-commit straggler wait;
    // the bench JSON's log_mean_batch field shows what it bought.
    opts.log.group_commit_wait_us = EnvGroupCommitWaitUs(0);
    FigureSetup setup;
    Status st = DB::Open(opts, &setup.db);
    if (!st.ok()) abort();
    SiBenchConfig config;
    config.items = items;
    config.queries_per_update = queries_per_update;
    std::unique_ptr<SiBench> workload;
    st = SiBench::Setup(setup.db.get(), config, &workload);
    if (!st.ok()) abort();
    setup.workload = std::move(workload);
    return setup;
  };
}

}  // namespace
}  // namespace ssidb::bench

int main() {
  using namespace ssidb::bench;
  PrintHeaderOnce();
  const struct {
    const char* name;
    uint64_t items;
    uint32_t queries_per_update;
  } figures[] = {
      {"fig6.6_sibench_10items_mixed", 10, 1},
      {"fig6.7_sibench_100items_mixed", 100, 1},
      {"fig6.8_sibench_1000items_mixed", 1000, 1},
      {"fig6.9_sibench_10items_qmostly", 10, 10},
      {"fig6.10_sibench_100items_qmostly", 100, 10},
      {"fig6.11_sibench_1000items_qmostly", 1000, 10},
  };
  for (const auto& fig : figures) {
    RunFigure(fig.name, MakeSetup(fig.items, fig.queries_per_update),
              StandardSeries());
  }
  return 0;
}
