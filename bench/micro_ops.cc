// Google-benchmark microbenchmarks of the engine primitives: per-operation
// costs behind the Chapter 6 numbers. Quantifies the paper's core overhead
// claims — SIREAD lock maintenance (§3.2), suspended-transaction cleanup
// (§3.3), gap locking during scans (§3.5) — at the operation level.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/encoding.h"
#include "src/common/random.h"
#include "src/db/db.h"

namespace ssidb {
namespace {

constexpr uint64_t kRows = 10000;

std::unique_ptr<DB> MakeLoadedDB(TableId* table,
                                 DBOptions opts = DBOptions{}) {
  std::unique_ptr<DB> db;
  Status st = DB::Open(opts, &db);
  if (!st.ok()) abort();
  st = db->CreateTable("t", table);
  if (!st.ok()) abort();
  for (uint64_t base = 0; base < kRows; base += 1000) {
    auto txn = db->Begin({IsolationLevel::kSnapshot});
    for (uint64_t i = base; i < base + 1000 && i < kRows; ++i) {
      txn->Insert(*table, EncodeU64Key(i), "value");
    }
    txn->Commit();
  }
  return db;
}

IsolationLevel IsoFromRange(int64_t r) {
  switch (r) {
    case 0: return IsolationLevel::kSnapshot;
    case 1: return IsolationLevel::kSerializableSSI;
    default: return IsolationLevel::kSerializable2PL;
  }
}

const char* IsoName(int64_t r) {
  switch (r) {
    case 0: return "SI";
    case 1: return "SSI";
    default: return "S2PL";
  }
}

/// One-row point read per transaction: the cost floor of Fig 6.1's short
/// transactions. SSI pays the SIREAD acquisition + suspension; S2PL pays
/// the shared lock; SI pays neither.
void BM_GetTxn(benchmark::State& state) {
  TableId table = 0;
  auto db = MakeLoadedDB(&table);
  Random rng(7);
  const IsolationLevel iso = IsoFromRange(state.range(0));
  std::string value;
  for (auto _ : state) {
    auto txn = db->Begin({iso});
    benchmark::DoNotOptimize(
        txn->Get(table, EncodeU64Key(rng.Uniform(kRows)), &value));
    txn->Commit();
  }
  state.SetLabel(IsoName(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetTxn)->Arg(0)->Arg(1)->Arg(2);

/// Read-modify-write of one row per transaction (the §3.7.3 upgrade path).
void BM_UpdateTxn(benchmark::State& state) {
  TableId table = 0;
  auto db = MakeLoadedDB(&table);
  Random rng(11);
  const IsolationLevel iso = IsoFromRange(state.range(0));
  std::string value;
  for (auto _ : state) {
    auto txn = db->Begin({iso});
    const std::string key = EncodeU64Key(rng.Uniform(kRows));
    txn->Get(table, key, &value);
    txn->Put(table, key, "updated");
    txn->Commit();
  }
  state.SetLabel(IsoName(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateTxn)->Arg(0)->Arg(1)->Arg(2);

/// Range scan of N rows per transaction. Under SSI this measures the gap
/// SIREAD locking of Fig 3.6; under S2PL the shared next-key locks; under
/// SI no locks at all — the paper's lock-manager-bound regime (§6.3.2).
void BM_ScanTxn(benchmark::State& state) {
  TableId table = 0;
  auto db = MakeLoadedDB(&table);
  Random rng(13);
  const IsolationLevel iso = IsoFromRange(state.range(0));
  const uint64_t span = static_cast<uint64_t>(state.range(1));
  for (auto _ : state) {
    auto txn = db->Begin({iso});
    const uint64_t lo = rng.Uniform(kRows - span);
    size_t rows = 0;
    txn->Scan(table, EncodeU64Key(lo), EncodeU64Key(lo + span - 1),
              [&rows](Slice, Slice) {
                ++rows;
                return true;
              });
    benchmark::DoNotOptimize(rows);
    txn->Commit();
  }
  state.SetLabel(std::string(IsoName(state.range(0))) + "/rows:" +
                 std::to_string(state.range(1)));
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ScanTxn)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({2, 100})
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({2, 1000});

/// Insert throughput (gap locking on the insert path, Fig 3.7).
void BM_InsertTxn(benchmark::State& state) {
  TableId table = 0;
  auto db = MakeLoadedDB(&table);
  const IsolationLevel iso = IsoFromRange(state.range(0));
  uint64_t next = kRows + 1;
  for (auto _ : state) {
    auto txn = db->Begin({iso});
    txn->Insert(table, EncodeU64Key(next++), "fresh");
    txn->Commit();
  }
  state.SetLabel(IsoName(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertTxn)->Arg(0)->Arg(1)->Arg(2);

/// Empty begin/commit: transaction-manager fixed costs (registration,
/// snapshot allocation, suspended-list sweep).
void BM_BeginCommit(benchmark::State& state) {
  TableId table = 0;
  auto db = MakeLoadedDB(&table);
  const IsolationLevel iso = IsoFromRange(state.range(0));
  for (auto _ : state) {
    auto txn = db->Begin({iso});
    txn->Commit();
  }
  state.SetLabel(IsoName(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BeginCommit)->Arg(0)->Arg(1)->Arg(2);

/// Lock manager hot path: acquire + release of an exclusive lock.
void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager::Config config;
  LockManager lm(config);
  const LockKey key{1, LockKind::kRow, "hot"};
  TxnId id = 1;
  for (auto _ : state) {
    lm.Acquire(id, key, LockMode::kExclusive);
    lm.ReleaseAll(id);
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

/// SIREAD acquisition against a growing population of retained locks —
/// the lock-table pressure of suspended transactions (§3.3).
void BM_SIReadAcquire(benchmark::State& state) {
  LockManager::Config config;
  LockManager lm(config);
  // Pre-populate retained SIREAD locks from "suspended" transactions.
  for (TxnId t = 1; t <= static_cast<TxnId>(state.range(0)); ++t) {
    lm.Acquire(t, LockKey{1, LockKind::kRow, "hot"}, LockMode::kSIRead);
  }
  TxnId id = 1000000;
  for (auto _ : state) {
    lm.Acquire(id, LockKey{1, LockKind::kRow, "hot"}, LockMode::kSIRead);
    lm.ReleaseAll(id);
    ++id;
  }
  state.SetLabel("retained:" + std::to_string(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SIReadAcquire)->Arg(0)->Arg(10)->Arg(100);

/// Version-chain read as the chain deepens (long-running snapshots delay
/// pruning; §4.2's "works best when the active set of versions fits").
void BM_VersionChainRead(benchmark::State& state) {
  VersionChain chain;
  for (int64_t i = 1; i <= state.range(0); ++i) {
    bool replaced = false;
    Version* v = chain.InstallUncommitted(static_cast<TxnId>(i), "v", false,
                                          &replaced);
    v->commit_ts.store(static_cast<Timestamp>(i * 10));
  }
  std::string value;
  for (auto _ : state) {
    // Read at a snapshot that sees only the oldest version: full walk.
    benchmark::DoNotOptimize(chain.Read(999999, 10, &value));
  }
  state.SetLabel("depth:" + std::to_string(state.range(0)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionChainRead)->Arg(1)->Arg(8)->Arg(64);

// ---------------------------------------------------------------------------
// Multi-threaded scaling: the sharded-storage / split-system-mutex payoff.
// Each thread owns a disjoint contiguous key partition, so any remaining
// slowdown is latch or cache-line contention, not logical conflicts. The
// thread-0 epilogue reports the per-shard picture: how many range shards
// the table split into and how evenly latch traffic landed on them
// (shard_acq_max_share == 1/shards is perfect balance, 1.0 is a single hot
// shard). These counters land in BENCH_*.json so the sharding win stays
// measurable.
// ---------------------------------------------------------------------------

std::unique_ptr<DB> g_mt_db;        // NOLINT: benchmark-lifetime globals.
TableId g_mt_table = 0;

void ReportShardCounters(benchmark::State& state) {
  Table* t = g_mt_db->table(g_mt_table);
  const std::vector<TableShardStats> shards = t->ShardStats();
  uint64_t total_acq = 0;
  uint64_t max_acq = 0;
  for (const TableShardStats& s : shards) {
    const uint64_t acq = s.reads + s.writes;
    total_acq += acq;
    max_acq = std::max(max_acq, acq);
  }
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(shards.size()));
  state.counters["shard_acq_total"] =
      benchmark::Counter(static_cast<double>(total_acq));
  state.counters["shard_acq_max_share"] = benchmark::Counter(
      total_acq == 0 ? 0.0
                     : static_cast<double>(max_acq) /
                           static_cast<double>(total_acq));
  // Commit-pipeline behaviour over the whole run: how often commit
  // acknowledgment actually parked, how targeted the watermark wakeups
  // were, whether the ring ever backpressured, and the deepest in-flight
  // commit window — these land in BENCH_micro_ops.json so the lock-free
  // pipeline's behaviour stays tracked alongside its throughput.
  const DBStats s = g_mt_db->GetStats();
  state.counters["commit_waits"] =
      benchmark::Counter(static_cast<double>(s.commit_waits));
  state.counters["commit_wakeups"] =
      benchmark::Counter(static_cast<double>(s.commit_wakeups));
  state.counters["ring_full_stalls"] =
      benchmark::Counter(static_cast<double>(s.ring_full_stalls));
  state.counters["max_commit_window"] =
      benchmark::Counter(static_cast<double>(s.max_commit_window_depth));
  // Certification-stage split: how many SSI commits skipped certification
  // entirely (conflict-free fast path) vs were validated by a combining
  // pass, and how much batching the combiner actually achieved
  // (combined/batches > 1 means one lock acquisition certified several
  // committers).
  state.counters["commit_fastpath"] =
      benchmark::Counter(static_cast<double>(s.commit_fastpath));
  state.counters["commit_combined"] =
      benchmark::Counter(static_cast<double>(s.commit_combined_txns));
  state.counters["commit_batches"] =
      benchmark::Counter(static_cast<double>(s.commit_combine_batches));
  state.counters["commit_max_batch"] =
      benchmark::Counter(static_cast<double>(s.commit_max_batch));
  // Commit-path latency percentiles over the whole run, read straight off
  // the engine's commit.total_ns stage histogram (sampled recording; the
  // MT series push enough commits that the quantiles are stable).
  const obs::Histogram* commit_hist =
      g_mt_db->metrics()->FindHistogram("commit.total_ns");
  if (commit_hist != nullptr) {
    const obs::HistogramSnapshot snap = commit_hist->Snapshot();
    if (snap.count > 0) {
      state.counters["commit_p50_us"] =
          benchmark::Counter(snap.Quantile(0.50) / 1000.0);
      state.counters["commit_p95_us"] =
          benchmark::Counter(snap.Quantile(0.95) / 1000.0);
      state.counters["commit_p99_us"] =
          benchmark::Counter(snap.Quantile(0.99) / 1000.0);
    }
  }
  // SSIDB_METRICS_DUMP: write the full registry snapshot once per MT run
  // (numeric suffix keeps successive benchmarks from overwriting).
  if (const char* dump_base = getenv("SSIDB_METRICS_DUMP")) {
    static std::atomic<uint64_t> dump_seq{0};
    const std::string path =
        std::string(dump_base) + "." +
        std::to_string(dump_seq.fetch_add(1, std::memory_order_relaxed));
    const std::string body = g_mt_db->DumpMetrics(obs::MetricsFormat::kJson);
    if (FILE* f = fopen(path.c_str(), "w")) {
      fwrite(body.data(), 1, body.size(), f);
      fputc('\n', f);
      fclose(f);
    }
  }
}

/// Shared harness: thread-0 builds the DB, each thread draws keys from its
/// own contiguous partition, thread-0 reports the shard counters.
/// `txn_body(key_id)` runs one whole transaction.
template <typename Body>
void RunMTDisjoint(benchmark::State& state, uint64_t seed,
                   const Body& txn_body) {
  if (state.thread_index() == 0) {
    g_mt_db = MakeLoadedDB(&g_mt_table);
  }
  const uint64_t span = kRows / static_cast<uint64_t>(state.threads());
  const uint64_t base = span * static_cast<uint64_t>(state.thread_index());
  Random rng(seed + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    txn_body(base + rng.Uniform(span));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    ReportShardCounters(state);
    g_mt_db.reset();
  }
}

/// One-row SSI point-read transactions on disjoint partitions. The 8-thread
/// series against the 1-thread series is the headline scaling number: no
/// Get on this path may take a global mutex.
void BM_MTGetDisjoint(benchmark::State& state) {
  std::string value;
  RunMTDisjoint(state, 17, [&](uint64_t key_id) {
    auto txn = g_mt_db->Begin({IsolationLevel::kSerializableSSI});
    benchmark::DoNotOptimize(txn->Get(g_mt_table, EncodeU64Key(key_id), &value));
    txn->Commit();
  });
}
BENCHMARK(BM_MTGetDisjoint)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

/// One-row SI update transactions on disjoint partitions: the write path's
/// scaling (exclusive row lock + FCW + version install + commit window).
void BM_MTUpdateDisjoint(benchmark::State& state) {
  RunMTDisjoint(state, 23, [&](uint64_t key_id) {
    auto txn = g_mt_db->Begin({IsolationLevel::kSnapshot});
    txn->Put(g_mt_table, EncodeU64Key(key_id), "updated");
    txn->Commit();
  });
}
BENCHMARK(BM_MTUpdateDisjoint)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

/// Mixed read/write SSI transactions on disjoint partitions — the closest
/// microbenchmark to the Chapter 6 short-transaction regime, now with the
/// conflict tracker's pairwise latches instead of the system mutex.
void BM_MTReadModifyWriteDisjoint(benchmark::State& state) {
  std::string value;
  RunMTDisjoint(state, 29, [&](uint64_t key_id) {
    auto txn = g_mt_db->Begin({IsolationLevel::kSerializableSSI});
    const std::string key = EncodeU64Key(key_id);
    txn->Get(g_mt_table, key, &value);
    txn->Put(g_mt_table, key, "updated");
    txn->Commit();
  });
}
BENCHMARK(BM_MTReadModifyWriteDisjoint)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

/// Write-heavy commit-pipeline series: one Put per transaction, so the
/// measurement is dominated by the commit path — the window critical
/// section, version stamping, the commit-slot ring (watermark advance +
/// coverage wait), registry deregistration and the log append. range(0)
/// selects the keyspace: 0 = disjoint per-thread partitions (pipeline
/// mechanics only — no logical conflicts), 1 = contended (all threads
/// hammer a 64-key space: hot-key EXCLUSIVE-lock handoff joins the
/// pipeline cost). The contended abort counter is expected to stay 0 —
/// single-statement updates never abort under first-committer-wins with
/// late snapshots (§4.5: lock first, then snapshot), and a nonzero value
/// here would mean that invariant broke. commits/s is the headline
/// number the lock-free commit pipeline is accountable for.
void BM_MTCommitPipeline(benchmark::State& state) {
  const bool contended = state.range(0) != 0;
  constexpr uint64_t kContendedKeys = 64;
  uint64_t aborted = 0;
  RunMTDisjoint(state, 37, [&](uint64_t key_id) {
    if (contended) key_id %= kContendedKeys;
    auto txn = g_mt_db->Begin({IsolationLevel::kSnapshot});
    txn->Put(g_mt_table, EncodeU64Key(key_id), "updated");
    if (!txn->Commit().ok()) ++aborted;
  });
  state.SetLabel(contended ? "SI/contended" : "SI/disjoint");
  state.counters["aborts"] =
      benchmark::Counter(static_cast<double>(aborted));
}
BENCHMARK(BM_MTCommitPipeline)
    ->Args({0})
    ->Args({1})
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

/// SSI read-mostly series: the tentpole workload of the SIREAD read path.
/// Each transaction issues 4 point operations; range(0) is the read
/// percentage (90 => 90/10 read/write mix, 100 => read-only). SIREAD
/// publication, the EXCLUSIVE-holder probe, and suspended-reader retention
/// dominate — exactly the traffic the paper observes never blocks (§3.2,
/// §3.3). items = operations, so throughput is ops/s, not txns/s.
void BM_MTSSIReadMostly(benchmark::State& state) {
  const uint64_t read_pct = static_cast<uint64_t>(state.range(0));
  constexpr int kOpsPerTxn = 4;
  std::string value;
  // Per-thread deterministic op mix (each benchmark thread runs this
  // function body, so the generator is per-thread state).
  Random mix_rng(41 + static_cast<uint64_t>(state.thread_index()));
  RunMTDisjoint(state, 31, [&](uint64_t key_id) {
    auto txn = g_mt_db->Begin({IsolationLevel::kSerializableSSI});
    for (int op = 0; op < kOpsPerTxn; ++op) {
      const std::string key = EncodeU64Key((key_id + op) % kRows);
      if (mix_rng.Uniform(100) < read_pct) {
        txn->Get(g_mt_table, key, &value);
      } else {
        txn->Put(g_mt_table, key, "updated");
      }
    }
    txn->Commit();
  });
  state.SetLabel("SSI/read_pct:" + std::to_string(read_pct));
  state.SetItemsProcessed(state.iterations() * kOpsPerTxn);
}
BENCHMARK(BM_MTSSIReadMostly)
    ->Args({90})
    ->Args({100})
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace ssidb

BENCHMARK_MAIN();
