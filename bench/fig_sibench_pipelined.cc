// Pipelined asynchronous commit vs blocking commit in the durable regime.
//
// The paper's §6.1.3 regime charges every update transaction a log flush;
// with one blocking transaction per worker, a worker commits at most
// 1/fsync per flush and throughput only grows by adding threads (MPL).
// The completion-driven commit core removes that coupling: a worker
// submits through Session::CommitAsync, keeps SSIDB_PIPELINE commits in
// flight, and the group-commit flusher acknowledges them in batches — the
// fsync amortizes across the pipeline depth instead of across threads.
//
// This binary runs the A/B directly: interleaved rounds of the blocking
// driver (pipeline_depth = 0) and the pipelined driver (depth from
// SSIDB_PIPELINE, default 32) over an update-only sibench at the same
// MPL, SSI series, flush_on_commit. Interleaving (A,B,A,B,...) rather
// than back-to-back blocks keeps slow drift (thermal, page cache) out of
// the comparison. Watch commits_per_sec and log_mean_batch: pipelining
// should multiply both.
//
// Durable points need SSIDB_WAL_DIR (real write+fsync WAL); without it
// the flush is the simulated latency (SSIDB_FLUSH_US, default 100us),
// which amortizes across a batch the same way and still demonstrates the
// pipeline.

#include "bench/figure_common.h"
#include "src/workloads/sibench.h"

namespace ssidb::bench {
namespace {

using workloads::SiBench;
using workloads::SiBenchConfig;

FigureSetup MakePoint(uint64_t items) {
  DBOptions opts;
  opts.log.flush_on_commit = true;
  opts.log.flush_latency_us = EnvFlushUs(100);
  opts.log.wal_dir = NextWalPointDir();
  opts.log.checkpoint_interval_ms = EnvCheckpointIntervalMs(0);
  opts.log.group_commit_wait_us = EnvGroupCommitWaitUs(0);
  FigureSetup setup;
  Status st = DB::Open(opts, &setup.db);
  if (!st.ok()) abort();
  SiBenchConfig config;
  config.items = items;
  config.queries_per_update = 0;  // Update-only: every commit pays the log.
  std::unique_ptr<SiBench> workload;
  st = SiBench::Setup(setup.db.get(), config, &workload);
  if (!st.ok()) abort();
  setup.workload = std::move(workload);
  return setup;
}

int EnvRounds(int dflt) {
  const char* v = getenv("SSIDB_BENCH_ROUNDS");
  if (v == nullptr) return dflt;
  const int r = atoi(v);
  return r > 0 ? r : dflt;
}

}  // namespace
}  // namespace ssidb::bench

int main() {
  using namespace ssidb::bench;
  PrintHeaderOnce();
  const uint64_t items = 1000;  // Low write-write contention: the flush,
                                // not FCW aborts, is the bottleneck.
  const int depth = EnvPipelineDepth(32);
  const int rounds = EnvRounds(3);
  const std::vector<int> mpls = EnvMpls({4});
  const SeriesConfig ssi{"SSI", ssidb::IsolationLevel::kSerializableSSI,
                         std::nullopt};
  DriverConfig config;
  config.measure_seconds = EnvSeconds(0.3);
  config.warmup_seconds = config.measure_seconds / 4;

  const std::string pipelined_name =
      "sibench_pipelined_depth" + std::to_string(depth);
  for (int round = 0; round < rounds; ++round) {
    for (int mpl : mpls) {
      for (const bool pipelined : {false, true}) {
        FigureSetup point = MakePoint(items);
        config.mpl = mpl;
        config.pipeline_depth = pipelined ? depth : 0;
        const std::string figure =
            (pipelined ? pipelined_name : "sibench_pipelined_blocking") +
            "_r" + std::to_string(round);
        RunResult r =
            RunWorkload(point.db.get(), point.workload.get(), ssi, config);
        printf("%s\n", ResultRow(figure, ssi.name, mpl, r).c_str());
        fflush(stdout);
        if (const char* json_path = getenv("SSIDB_BENCH_JSON")) {
          if (FILE* jf = fopen(json_path, "a")) {
            fprintf(jf, "%s\n",
                    ResultJsonLine(figure, ssi.name, mpl, r).c_str());
            fclose(jf);
          }
        }
      }
    }
  }
  return 0;
}
