// Shared scaffolding for the figure-reproduction binaries.
//
// Every binary sweeps MPL for the three concurrency-control series (S2PL /
// SI / SSI) exactly as Chapter 6 does, printing one CSV row per point:
//   figure,series,mpl,commits_per_sec,deadlocks_per_commit,
//   conflicts_per_commit,unsafe_per_commit,total_commits
// A fresh engine is created per point (the paper restarts between runs) so
// points are independent.
//
// Environment knobs (see benchlib/driver.h): SSIDB_BENCH_SECONDS,
// SSIDB_BENCH_MPLS, SSIDB_FLUSH_US.

#ifndef SSIDB_BENCH_FIGURE_COMMON_H_
#define SSIDB_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/benchlib/driver.h"
#include "src/benchlib/stats.h"
#include "src/db/db.h"

namespace ssidb::bench {

/// Builds a fresh DB + workload for one measurement point.
struct FigureSetup {
  std::unique_ptr<DB> db;
  std::unique_ptr<Workload> workload;
};
using SetupFn = std::function<FigureSetup()>;

/// Default MPL sweep of the Berkeley DB chapters (§6.1.1); override with
/// SSIDB_BENCH_MPLS.
inline std::vector<int> DefaultMpls() { return {1, 2, 5, 10, 20}; }

/// Run one figure: for each series and MPL, run the measurement window and
/// print the CSV row. With `fresh_db_per_point` every point gets a newly
/// loaded engine (fully independent points — used where loading is cheap);
/// otherwise one engine is loaded per figure and reused, the usual OLTP
/// harness practice for heavyweight schemas (TPC-C's NEWO/DLVY rates are
/// balanced, so the database stays in steady state).
inline void RunFigure(const std::string& figure, const SetupFn& setup,
                      const std::vector<SeriesConfig>& series_list,
                      double default_seconds = 0.3,
                      bool fresh_db_per_point = true) {
  DriverConfig config;
  config.measure_seconds = EnvSeconds(default_seconds);
  config.warmup_seconds = config.measure_seconds / 4;
  // SSIDB_PIPELINE=N: every point runs the pipelined driver with N
  // in-flight commits per worker (workloads without a SubmitOne override
  // degrade to blocking behavior, one at a time).
  config.pipeline_depth = EnvPipelineDepth(0);
  const std::vector<int> mpls = EnvMpls(DefaultMpls());
  FigureSetup shared;
  if (!fresh_db_per_point) shared = setup();
  for (const SeriesConfig& series : series_list) {
    for (int mpl : mpls) {
      FigureSetup fresh;
      if (fresh_db_per_point) fresh = setup();
      FigureSetup& point = fresh_db_per_point ? fresh : shared;
      config.mpl = mpl;
      RunResult r =
          RunWorkload(point.db.get(), point.workload.get(), series, config);
      printf("%s\n", ResultRow(figure, series.name, mpl, r).c_str());
      fflush(stdout);
      if (const char* json_path = getenv("SSIDB_BENCH_JSON")) {
        if (FILE* jf = fopen(json_path, "a")) {
          fprintf(jf, "%s\n",
                  ResultJsonLine(figure, series.name, mpl, r).c_str());
          fclose(jf);
        }
      }
      // Full registry snapshot per point, suffixed so the sweep's files
      // don't overwrite each other (SSIDB_METRICS_DUMP=/tmp/m.json gives
      // /tmp/m.json.SSI.mpl20 etc.).
      const std::string dump_base = EnvMetricsDump();
      if (!dump_base.empty()) {
        MaybeDumpMetrics(point.db.get(), dump_base + "." + series.name +
                                             ".mpl" + std::to_string(mpl));
      }
    }
  }
}

inline void PrintHeaderOnce() {
  static bool printed = false;
  if (!printed) {
    printf("%s\n", ResultHeader().c_str());
    printed = true;
  }
}

}  // namespace ssidb::bench

#endif  // SSIDB_BENCH_FIGURE_COMMON_H_
