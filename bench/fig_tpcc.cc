// Figures 6.12-6.16: the InnoDB TPC-C++ evaluation (§6.4).
//
//   Fig 6.12  W=1, skipping year-to-date updates
//   Fig 6.13  W=W_BIG (paper: 10), standard scale — larger data volume
//   Fig 6.14  W=W_BIG, skipping year-to-date updates
//   Fig 6.15  W=W_BIG, tiny data scaling — high contention
//   Fig 6.16  W=W_BIG, tiny scaling + skip-YTD
//
// Engine: the InnoDB prototype configuration (row locks + gap locks,
// reference tracker). The paper's W=10 standard scale is 1.2GB; loading it
// in-process takes minutes, so the default "big" W is 2 (override with
// SSIDB_TPCC_WAREHOUSES). Shapes are contention-driven and survive the
// smaller W; EXPERIMENTS.md records the mapping.

#include <cstdlib>

#include "bench/figure_common.h"
#include "src/workloads/tpcc_workload.h"

namespace ssidb::bench {
namespace {

using workloads::tpcc::Mix;
using workloads::tpcc::TpccConfig;
using workloads::tpcc::TpccWorkload;

uint32_t EnvWarehouses(uint32_t dflt) {
  const char* v = std::getenv("SSIDB_TPCC_WAREHOUSES");
  if (v == nullptr) return dflt;
  const long w = std::atol(v);
  return w > 0 ? static_cast<uint32_t>(w) : dflt;
}

SetupFn MakeSetup(uint32_t warehouses, bool tiny, bool skip_ytd) {
  return [warehouses, tiny, skip_ytd]() {
    DBOptions opts;
    opts.log.flush_on_commit = true;
    opts.log.flush_latency_us = EnvFlushUs(100);
    FigureSetup setup;
    Status st = DB::Open(opts, &setup.db);
    if (!st.ok()) abort();
    TpccConfig config;
    config.warehouses = warehouses;
    config.tiny = tiny;
    config.skip_ytd_updates = skip_ytd;
    config.mix = Mix::kStandard;
    std::unique_ptr<TpccWorkload> workload;
    st = TpccWorkload::Setup(setup.db.get(), config, 42, &workload);
    if (!st.ok()) {
      fprintf(stderr, "tpcc setup failed: %s\n", st.ToString().c_str());
      abort();
    }
    setup.workload = std::move(workload);
    return setup;
  };
}

}  // namespace
}  // namespace ssidb::bench

int main() {
  using namespace ssidb::bench;
  PrintHeaderOnce();
  const uint32_t w_big = EnvWarehouses(2);
  const struct {
    std::string name;
    uint32_t warehouses;
    bool tiny;
    bool skip_ytd;
  } figures[] = {
      {"fig6.12_tpcc_w1_skipytd", 1, false, true},
      {"fig6.13_tpcc_wbig", w_big, false, false},
      {"fig6.14_tpcc_wbig_skipytd", w_big, false, true},
      {"fig6.15_tpcc_wbig_tiny", w_big, true, false},
      {"fig6.16_tpcc_wbig_tiny_skipytd", w_big, true, true},
  };
  for (const auto& fig : figures) {
    RunFigure(fig.name, MakeSetup(fig.warehouses, fig.tiny, fig.skip_ytd),
              StandardSeries(), /*default_seconds=*/0.3,
              /*fresh_db_per_point=*/false);
  }
  return 0;
}
